"""QMatch: the paper's sequential quantified-matching algorithm (Section 4).

QMatch evaluates an arbitrary QGP ``Q(xo)`` in the three steps of Figure 5:

1. build candidate sets and auxiliary structures (``FilterCandidate`` with
   quantifier upper bounds, optional dual-simulation pre-filter);
2. evaluate the positive part ``Π(Q)`` with :func:`repro.matching.dmatch.dmatch`
   (dynamic candidate ordering, pruning, locality, early termination);
3. for every negated edge ``e``, evaluate ``Π(Q⁺ᵉ)`` *incrementally* with
   :func:`repro.matching.incremental.inc_qmatch` against the cached results of
   step 2, and subtract:
   ``Q(xo, G) = Π(Q)(xo, G) \\ ⋃ₑ Π(Q⁺ᵉ)(xo, G)``.

Two baseline variants used throughout the paper's experiments are provided as
factories:

* :func:`qmatch_engine`   — the full algorithm (``QMatch`` in the figures),
* :func:`qmatch_n_engine` — ``QMatchN``: identical except that every
  ``Π(Q⁺ᵉ)`` is recomputed from scratch with DMatch instead of incrementally.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.graph.digraph import PropertyGraph
from repro.matching.dmatch import DMatchOptions, dmatch
from repro.matching.incremental import inc_qmatch
from repro.matching.result import IncrementalStats, MatchResult
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.utils.counters import WorkCounter
from repro.utils.timing import Timer

__all__ = ["QMatch", "qmatch_engine", "qmatch_n_engine"]


class QMatch:
    """Sequential quantified matching with optional incremental negation handling.

    Parameters
    ----------
    use_incremental:
        Process negated edges with IncQMatch (the paper's QMatch) instead of
        recomputing each positified pattern from scratch (QMatchN).
    options:
        The :class:`DMatchOptions` switches controlling the positive-part
        search (simulation pre-filter, potential ordering, locality, early
        exit).
    name:
        Engine name reported in results; defaults to ``"QMatch"`` or
        ``"QMatchN"`` depending on *use_incremental*.
    """

    def __init__(
        self,
        use_incremental: bool = True,
        options: DMatchOptions = DMatchOptions(),
        name: Optional[str] = None,
    ) -> None:
        self.use_incremental = use_incremental
        self.options = options
        self.name = name or ("QMatch" if use_incremental else "QMatchN")

    # ------------------------------------------------------------------ api

    def evaluate(
        self,
        pattern: QuantifiedGraphPattern,
        graph: PropertyGraph,
        focus_restriction: Optional[Set] = None,
        plan=None,
        plan_binding=None,
    ) -> MatchResult:
        """Compute ``Q(xo, G)`` and return a full :class:`MatchResult`.

        ``focus_restriction`` limits the verified focus candidates to the given
        set — the intra-fragment parallelism of mQMatch relies on it to split
        the owned candidates across threads.

        ``plan``/``plan_binding`` optionally pass a
        :class:`repro.plan.CompiledPlan` for this pattern's fingerprint (plus
        the pattern-node → canonical-position binding) down to the positive
        DMatch evaluation.  The negation passes stay plan-less: they evaluate
        *derived* patterns (``Q⁺ᵉ``) whose shapes are not the cached
        fingerprint.  Answers and work counters are byte-identical either
        way — the plan only removes interpretation overhead.
        """
        pattern.validate()
        counter = WorkCounter()
        incremental_stats: list[IncrementalStats] = []
        with span(
            "qmatch.evaluate", pattern=pattern.name, engine=self.name
        ), Timer() as timer:
            positive_part = pattern.pi()
            cached = dmatch(
                positive_part,
                graph,
                options=self.options,
                counter=counter,
                focus_restriction=focus_restriction,
                plan=plan,
                plan_binding=plan_binding,
            )
            positive_answer: Set = set(cached.answer)
            answer: Set = set(cached.answer)

            if answer:
                for negated_edge, positified_pi in pattern.positified_pi_patterns():
                    if self.use_incremental:
                        excluded, stats = inc_qmatch(
                            pattern,
                            negated_edge,
                            positified_pi,
                            graph,
                            cached,
                            options=self.options,
                            counter=counter,
                        )
                    else:
                        outcome = dmatch(
                            positified_pi, graph, options=self.options, counter=counter
                        )
                        excluded = set(outcome.answer)
                        stats = IncrementalStats(
                            edge=str(negated_edge),
                            affected_area=set(),
                            verifications=0,
                            removed=set(excluded),
                        )
                    incremental_stats.append(stats)
                    answer -= excluded
                    if not answer:
                        break

        # Mirror the per-query work totals into the registry (one batch of
        # increments per evaluated query; the backtracking loop itself stays
        # untouched so the disabled path costs one falsy check here).
        registry = get_registry()
        if registry:
            registry.counter("match.queries").inc()
            registry.counter("match.verifications").inc(counter.verifications)
            registry.counter("match.extensions").inc(counter.extensions)
            registry.counter("match.quantifier_checks").inc(
                counter.quantifier_checks
            )
            registry.counter("match.candidates_pruned").inc(
                counter.candidates_pruned
            )
            registry.histogram("match.seconds").observe(timer.elapsed)

        return MatchResult(
            answer=answer,
            positive_answer=positive_answer,
            node_matches={u: set(vs) for u, vs in cached.node_matches.items()},
            counter=counter,
            incremental=incremental_stats,
            elapsed=timer.elapsed,
            engine=self.name,
        )

    def evaluate_answer(self, pattern: QuantifiedGraphPattern, graph: PropertyGraph) -> Set:
        """Convenience wrapper returning only ``Q(xo, G)``."""
        return self.evaluate(pattern, graph).answer


def qmatch_engine(options: DMatchOptions = DMatchOptions()) -> QMatch:
    """The full QMatch engine (incremental negation handling enabled)."""
    return QMatch(use_incremental=True, options=options)


def qmatch_n_engine(options: DMatchOptions = DMatchOptions()) -> QMatch:
    """The QMatchN baseline: negated edges recomputed from scratch."""
    return QMatch(use_incremental=False, options=options)
