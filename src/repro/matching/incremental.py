"""IncQMatch: incremental evaluation of positified patterns (paper Section 4.2).

When a QGP ``Q`` has negated edges, its answer is

``Q(xo, G) = Π(Q)(xo, G) \\ ⋃_{e ∈ E⁻Q} Π(Q⁺ᵉ)(xo, G)``.

Computing each ``Π(Q⁺ᵉ)`` from scratch wastes the work already done for
``Π(Q)``: ``Π(Q⁺ᵉ)`` only *adds* constraints (the positified edge and the
nodes it connects), so ``Π(Q⁺ᵉ)(u, G) ⊆ Π(Q)(u, G)`` for every pattern node
``u`` that exists in both.  IncQMatch therefore works *incrementally, in
response to a change in the query* (not, as in classical incremental matching,
a change in the graph):

* it re-verifies only the cached focus matches ``Π(Q)(xo, G)``;
* candidate pools of pattern nodes shared with ``Π(Q)`` start from the cached
  candidate sets instead of the whole graph;
* pattern nodes introduced by the positified edge get fresh label candidates,
  restricted to the neighbourhood of the cached matches;
* with ``options.use_index`` (the default) both the seeded refinement and the
  re-verification enumeration run over the compiled
  :class:`repro.index.GraphIndex` snapshot — the :class:`MatchContext` built
  inside :func:`repro.matching.dmatch.dmatch` intersects the compiled
  per-label row stores instead of copying adjacency sets per probe.

The *affected area* ``AFF`` of the paper is tracked explicitly, and the number
of verifications performed is guaranteed (and asserted in tests) to be at most
``|AFF|`` — the optimality statement of Proposition 6.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set, Tuple

from repro.graph.digraph import PropertyGraph
from repro.graph.simulation import refine_candidates
from repro.matching.candidates import CandidateIndex, apply_quantifier_bound_filter
from repro.matching.dmatch import DMatchOptions, DMatchOutcome, dmatch
from repro.matching.result import IncrementalStats
from repro.patterns.qgp import PatternEdge, QuantifiedGraphPattern
from repro.utils.counters import WorkCounter

__all__ = ["inc_qmatch"]

NodeId = Hashable


def _incremental_candidate_index(
    positified: QuantifiedGraphPattern,
    graph: PropertyGraph,
    cached: DMatchOutcome,
    use_index: bool = True,
) -> Tuple[CandidateIndex, Set[NodeId], int]:
    """Candidate index for ``Π(Q⁺ᵉ)`` seeded from the cached ``Π(Q)`` run.

    Returns ``(index, new_pattern_nodes, reused)`` where *reused* counts how
    many candidate entries were taken from the cache rather than recomputed.

    With *use_index* the seeded refinement and the upper-bound probes run
    over the compiled :class:`repro.index.GraphIndex` snapshot.
    ``GraphIndex.for_graph`` consults the graph's mutation counter, so a
    snapshot left over from the ``Π(Q)`` evaluation is reused when the graph
    is unchanged and rebuilt (never silently trusted) when it is stale.
    """
    assert cached.index is not None
    cached_candidates = cached.index.candidates
    index = CandidateIndex(pattern=positified, graph=graph)
    graph_index = None
    if use_index:
        from repro.index.snapshot import GraphIndex

        graph_index = GraphIndex.for_graph(graph)
    new_nodes: Set[NodeId] = set()
    reused = 0
    for pattern_node in positified.nodes():
        if pattern_node in cached_candidates:
            # The positified pattern only adds constraints, so the cached
            # candidate pool is still a superset of the true candidates.
            index.candidates[pattern_node] = set(cached_candidates[pattern_node])
            reused += len(cached_candidates[pattern_node])
        else:
            new_nodes.add(pattern_node)
            label = positified.node_label(pattern_node)
            index.candidates[pattern_node] = (
                graph_index.nodes_with_label(label)
                if graph_index is not None
                else graph.nodes_with_label(label)
            )

    # Refine the seeded pools against the structure of the positified pattern
    # (a dual-simulation fixpoint started from the cached pools, not from the
    # whole graph).  This is the incremental analogue of the FilterCandidate
    # step and is what keeps the number of re-verified candidates small.
    index.candidates = refine_candidates(
        positified.stratified().graph, graph, index.candidates, dual=True,
        use_index=use_index,
    )

    # Re-apply the quantifier upper-bound filter only around the new edges
    # (the cached pools already satisfied it for the old edges).
    old_keys = {e.key for e in cached.index.pattern.edges()}
    for edge in positified.edges():
        if edge.source not in new_nodes and edge.target not in new_nodes:
            if edge.key in old_keys:
                continue
        apply_quantifier_bound_filter(index, edge, graph, graph_index)
    return index, new_nodes, reused


def inc_qmatch(
    original: QuantifiedGraphPattern,
    negated_edge: PatternEdge,
    positified_pi: QuantifiedGraphPattern,
    graph: PropertyGraph,
    cached: DMatchOutcome,
    options: DMatchOptions = DMatchOptions(),
    counter: Optional[WorkCounter] = None,
) -> Tuple[Set[NodeId], IncrementalStats]:
    """Compute ``Π(Q⁺ᵉ)(xo, G)`` incrementally from the cached ``Π(Q)`` results.

    Parameters
    ----------
    original:
        The full pattern ``Q`` (used only for reporting).
    negated_edge:
        The negated edge ``e`` being positified.
    positified_pi:
        ``Π(Q⁺ᵉ)`` — computed by the caller (QMatch) via
        :meth:`QuantifiedGraphPattern.positified_pi_patterns`.
    cached:
        The :class:`DMatchOutcome` of evaluating ``Π(Q)``.

    Returns
    -------
    (answer, stats):
        *answer* is ``Π(Q⁺ᵉ)(xo, G)``; *stats* records the affected area and
        the number of verifications actually performed.
    """
    counter = counter if counter is not None else WorkCounter()
    stats = IncrementalStats(edge=str(negated_edge))

    if not cached.answer:
        # Π(Q) had no match, so neither does the more constrained Π(Q⁺ᵉ).
        return set(), stats

    index, new_nodes, reused = _incremental_candidate_index(
        positified_pi, graph, cached, use_index=options.use_index
    )
    stats.reused_candidates = reused

    # The affected area: cached matches of the focus (they must be
    # re-verified), the cached matches of the old endpoint of every new edge,
    # and the candidates of the pattern nodes introduced by positification.
    focus = positified_pi.focus
    stats.affected_area.update(cached.answer)
    old_edge_keys = {e.key for e in cached.index.pattern.edges()} if cached.index else set()
    for edge in positified_pi.edges():
        if edge.key in old_edge_keys:
            continue
        for endpoint in (edge.source, edge.target):
            if endpoint in new_nodes:
                stats.affected_area.update(index.candidates.get(endpoint, ()))
            else:
                stats.affected_area.update(cached.node_matches.get(endpoint, ()))

    before = counter.verifications
    outcome = dmatch(
        positified_pi,
        graph,
        options=options,
        index=index,
        counter=counter,
        focus_restriction=set(cached.answer),
    )
    stats.verifications = counter.verifications - before
    stats.removed = set(outcome.answer)
    return set(outcome.answer), stats
