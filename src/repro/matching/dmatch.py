"""DMatch: quantifier-aware evaluation of positive QGPs (paper Section 4.1).

DMatch revises the generic ``Match`` search in three ways, all implemented
here:

1. **Locality.**  A candidate ``vx`` of the query focus can only be verified
   by nodes inside its d-hop neighbourhood, where ``d`` is the pattern radius
   — the same observation that powers the parallel algorithm.  DMatch
   therefore verifies focus candidates one at a time, restricting every other
   candidate set to the focus candidate's neighbourhood, instead of
   enumerating matches over the whole graph as ``Enum`` does.
2. **Quantifier-aware pruning.**  Candidate sets are pre-filtered by the
   upper bounds ``U(v, e)`` (see :mod:`repro.matching.candidates`), candidates
   are visited in decreasing *potential* order (see
   :mod:`repro.matching.pruning`), and a focus candidate whose local candidate
   sets cannot possibly satisfy some quantifier is rejected without search.
3. **Early termination.**  When every quantifier in the pattern is monotone
   (``≥`` / ``>``), a focus candidate is accepted as soon as one enumeration
   witness satisfies all quantifiers with the counts accumulated so far —
   counts only grow, so the decision is final.  Patterns containing equality
   quantifiers (``= p`` or the universal ``= 100%``) require exact counts and
   fall back to exhausting the local enumeration.

The function returns, besides the focus answer set, the per-pattern-node
binding sets observed in satisfying matches; QMatch caches them for the
incremental processing of negated edges and the QGAR layer reuses them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.graph.digraph import PropertyGraph
from repro.graph.traversal import nodes_within_hops
from repro.matching.candidates import CandidateIndex, build_candidate_index
from repro.matching.generic import MatchContext, find_isomorphisms
from repro.matching.pruning import potential_ordering
from repro.matching.result import MatchResult
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.plan.vectorized import EMPTY_LOCALITY, DenseLocality
from repro.utils.counters import WorkCounter
from repro.utils.errors import MatchingError
from repro.utils.timing import Timer

__all__ = ["DMatchOptions", "dmatch", "DMatchOutcome"]

NodeId = Hashable

# Degree-row fallback for edge labels absent from the resolved snapshot: every
# probe answers 0, matching ``graph.out_degree`` for a label with no edges.
_EMPTY_ROWS: Dict[NodeId, frozenset] = {}


@dataclass(frozen=True)
class DMatchOptions:
    """Tuning switches for DMatch (each corresponds to a paper optimisation).

    ``use_simulation``   — dual-simulation candidate pre-filter (Lemma 13).
    ``use_potential``    — potential-score candidate ordering (Appendix B).
    ``early_exit``       — stop verifying a focus candidate as soon as a
                           witness satisfies all (monotone) quantifiers.
    ``use_locality``     — additionally intersect candidate sets with the
                           focus candidate's radius-hop neighbourhood.  The
                           anchored search already explores only nodes
                           connected to the focus candidate, so this is off by
                           default; it pays off on patterns whose candidate
                           sets are huge and poorly connected.
    ``use_index``        — resolve candidate filtering, the dual-simulation
                           fixpoint and the backtracking enumeration through
                           the compiled :class:`repro.index.GraphIndex`
                           snapshot (CSR adjacency, degree arrays,
                           neighbourhood signatures).  Answers are identical
                           with the dict-backed fallback (``False``); only
                           the speed differs.
    ``use_index_enumeration`` — override ``use_index`` for the enumeration
                           phase only (the :class:`MatchContext` dynamic
                           pools).  ``None`` (default) follows ``use_index``;
                           setting it to ``False`` while ``use_index`` stays
                           on is the ``QMatch-enum-noidx`` benchmark
                           ablation: indexed filtering, dict-backed
                           backtracking.
    ``vectorized``       — enumerate over dense interned ids with the
                           sorted-run merge kernels of
                           :mod:`repro.plan.vectorized`: candidate pools
                           become sorted ``array('i')`` runs intersected
                           against raw CSR rows, the locality ball becomes a
                           dense frontier BFS, and ids decode back only when
                           a match is yielded.  Requires the indexed
                           enumeration; answers and work counters are
                           byte-identical to the frozenset path, which keeps
                           serving whenever the dense state declines to
                           build (e.g. under the potential ordering).
    """

    use_simulation: bool = True
    use_potential: bool = True
    early_exit: bool = True
    use_locality: bool = False
    use_index: bool = True
    use_index_enumeration: Optional[bool] = None
    vectorized: bool = False

    @property
    def index_enumeration(self) -> bool:
        """The effective enumeration switch (``use_index`` unless overridden)."""
        if self.use_index_enumeration is None:
            return self.use_index
        return self.use_index_enumeration


@dataclass
class DMatchOutcome:
    """Answer plus the caches produced while evaluating a positive pattern."""

    answer: Set[NodeId] = field(default_factory=set)
    node_matches: Dict[NodeId, Set[NodeId]] = field(default_factory=dict)
    index: Optional[CandidateIndex] = None
    counter: WorkCounter = field(default_factory=WorkCounter)
    elapsed: float = 0.0

    def as_match_result(self, engine: str = "DMatch") -> MatchResult:
        return MatchResult(
            answer=set(self.answer),
            positive_answer=set(self.answer),
            node_matches={u: set(vs) for u, vs in self.node_matches.items()},
            counter=self.counter,
            elapsed=self.elapsed,
            engine=engine,
        )


def _pattern_is_monotone(pattern: QuantifiedGraphPattern) -> bool:
    """True when every quantifier is a ``≥``/``>`` aggregate (counts are monotone)."""
    return all(edge.quantifier.op in (">=", ">") for edge in pattern.edges())


def _local_candidate_pools(
    pattern: QuantifiedGraphPattern,
    index: CandidateIndex,
    local_nodes: Set[NodeId],
    label_members: Dict[str, Tuple[Set[NodeId], int]],
) -> Dict[NodeId, Set[NodeId]]:
    """Candidate pools restricted to *local_nodes*, hoisted per label.

    The naive restriction intersects every pattern node's candidate set with
    the ball — one ``O(min(|pool|, |ball|))`` pass *per node*, where pools
    with no quantifier pruning are full label-candidate sets and dominate the
    ball.  Hoisting through the label makes it one pass per *label*
    (``label members ∩ ball``), after which an unpruned pool — recognised by
    size, sound because candidate sets only ever shrink from the label
    members (the :class:`CandidateIndex` build invariant) — serves the
    label-local set as-is, and a pruned pool intersects against the (small)
    label-local set instead of the whole ball.  Pools may share set objects
    (two unpruned nodes of one label); callers treat them as read-only, the
    same contract :class:`MatchContext` already states for its candidates.
    """
    label_local: Dict[str, Set[NodeId]] = {}
    pools: Dict[NodeId, Set[NodeId]] = {}
    for pattern_node in pattern.nodes():
        label = pattern.node_label(pattern_node)
        members, full_size = label_members[label]
        local_label = label_local.get(label)
        if local_label is None:
            local_label = members & local_nodes
            label_local[label] = local_label
        pool = index.candidate_set(pattern_node)
        pools[pattern_node] = (
            local_label if len(pool) == full_size else pool & local_label
        )
    return pools


def _verify_focus_candidate(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    index: CandidateIndex,
    focus_candidate: NodeId,
    radius: int,
    options: DMatchOptions,
    counter: WorkCounter,
    monotone: bool,
    ordering: Optional[Dict[NodeId, List[NodeId]]] = None,
    shared_context: Optional[MatchContext] = None,
    pattern_edges=None,
    plan=None,
    plan_binding=None,
    edge_specs=None,
    stratified_pattern=None,
    plan_resolution=None,
    label_members=None,
    dense_locality=None,
) -> Tuple[bool, Dict[NodeId, Set[NodeId]]]:
    """Decide whether *focus_candidate* belongs to ``Π(Q)(xo, G)``.

    Returns ``(matched, bindings)`` where *bindings* are the pattern-node →
    graph-node sets drawn from satisfying assignments (used for caching).
    """
    focus = pattern.focus
    counter.verifications += 1

    if options.use_locality:
        context = None
        if dense_locality is not None:
            # Vectorized sweep: ball, pool restriction and per-candidate
            # ordering all in dense-id space (one kernel intersection per
            # pool, no per-candidate MatchContext).  Emptiness of any local
            # pool is a definite non-match, exactly like the frozenset check
            # below; ``None`` means this candidate cannot be served densely
            # and falls through to the generic restriction.
            context = dense_locality.context_for(focus_candidate)
            if context is EMPTY_LOCALITY:
                return False, {}
        if context is None:
            # Restrict every candidate set to the focus candidate's
            # radius-hop neighbourhood (costs one BFS per candidate) and
            # search with a per-candidate context.
            if plan_resolution is not None:
                # Same ball, same membership — swept over the plan
                # resolution's flat per-epoch neighbour table instead of
                # per-node set unions.
                local_nodes = plan_resolution.ball(focus_candidate, radius)
            else:
                local_nodes = nodes_within_hops(graph, focus_candidate, radius)
            local_candidates = _local_candidate_pools(
                pattern, index, local_nodes, label_members
            )
            local_candidates[focus] = (
                {focus_candidate} if focus_candidate in index.candidate_set(focus) else set()
            )
            if any(not members for members in local_candidates.values()):
                return False, {}
            context = MatchContext(
                # The compiled path reuses the query's one stratified pattern
                # so the plan's per-pattern memos hold across focus
                # candidates; the interpreted path keeps its per-candidate
                # construction.
                stratified_pattern if stratified_pattern is not None else pattern.stratified(),
                graph,
                candidates=local_candidates,
                candidate_order=ordering if isinstance(ordering, dict) else None,
                anchored_nodes={focus},
                use_index=options.index_enumeration,
                plan=plan,
                plan_binding=plan_binding,
            )
    else:
        # The shared context already carries the filtered candidate pools.
        context = shared_context

    edges = pattern_edges if pattern_edges is not None else pattern.edges()
    matched_children: Dict[Tuple[int, NodeId], Set[NodeId]] = {}
    assignments: List[Dict[NodeId, NodeId]] = []

    if edge_specs is None:

        def assignment_satisfies(assignment: Dict[NodeId, NodeId]) -> bool:
            for edge_index, edge in enumerate(edges):
                counter.quantifier_checks += 1
                bound_source = assignment[edge.source]
                count = len(matched_children.get((edge_index, bound_source), ()))
                total = graph.out_degree(bound_source, edge.label)
                if not edge.quantifier.check(count, total):
                    return False
            return True

    else:
        # Compiled plan: the per-edge attribute chain, quantifier dispatch
        # and the ``out_degree`` method call are lowered to prebound locals,
        # closed-over threshold closures and snapshot degree-row probes.
        # Work accounting is unchanged — one quantifier check per edge until
        # the first failure, exactly like the interpreted loop above.
        children_get = matched_children.get

        def assignment_satisfies(assignment: Dict[NodeId, NodeId]) -> bool:
            edge_index = 0
            for source, check, degree_get in edge_specs:
                counter.quantifier_checks += 1
                bound_source = assignment[source]
                if not check(
                    len(children_get((edge_index, bound_source), ())),
                    len(degree_get(bound_source, ())),
                ):
                    return False
                edge_index += 1
            return True

    bindings: Dict[NodeId, Set[NodeId]] = {}
    matched = False
    for assignment in context.isomorphisms(
        anchor={focus: focus_candidate},
        counter=counter,
    ):
        assignments.append(assignment)
        for edge_index, edge in enumerate(edges):
            matched_children.setdefault(
                (edge_index, assignment[edge.source]), set()
            ).add(assignment[edge.target])
        if monotone and options.early_exit:
            # Counts only grow, so a satisfying witness is conclusive.
            if assignment_satisfies(assignment):
                matched = True
                for pattern_node, graph_node in assignment.items():
                    bindings.setdefault(pattern_node, set()).add(graph_node)
                return True, bindings

    if monotone and options.early_exit:
        # The enumeration finished; re-check all witnesses against the final
        # counts (a witness seen early may satisfy only with later counts).
        for assignment in assignments:
            if assignment_satisfies(assignment):
                matched = True
                for pattern_node, graph_node in assignment.items():
                    bindings.setdefault(pattern_node, set()).add(graph_node)
                break
        return matched, bindings

    # Exact-count path (equality / universal quantifiers present): evaluate
    # every witness against the complete counts.
    for assignment in assignments:
        if assignment_satisfies(assignment):
            matched = True
            for pattern_node, graph_node in assignment.items():
                bindings.setdefault(pattern_node, set()).add(graph_node)
    return matched, bindings


def dmatch(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    options: DMatchOptions = DMatchOptions(),
    index: Optional[CandidateIndex] = None,
    counter: Optional[WorkCounter] = None,
    focus_restriction: Optional[Set[NodeId]] = None,
    plan=None,
    plan_binding=None,
) -> DMatchOutcome:
    """Evaluate a *positive* QGP and return its answer plus caches.

    Parameters
    ----------
    pattern:
        A positive QGP (no negated edges); QMatch passes ``Π(Q)`` here.
    index:
        A pre-built :class:`CandidateIndex`; built from scratch when omitted.
    focus_restriction:
        Verify only these focus candidates (the incremental step passes the
        cached positive answer here).
    plan, plan_binding:
        An optional :class:`repro.plan.CompiledPlan` for this pattern's
        fingerprint plus the pattern-node → canonical-position binding.
        Lowers the quantifier checks and reuses the plan's pre-resolved row
        stores / ``str`` ranks; answers and work counters stay byte-identical
        to the plan-less evaluation.
    """
    if not pattern.is_positive:
        raise MatchingError("dmatch evaluates positive patterns; use QMatch for negation")
    counter = counter if counter is not None else WorkCounter()
    outcome = DMatchOutcome(counter=counter)
    with Timer() as timer:
        if index is None:
            index = build_candidate_index(
                pattern,
                graph,
                use_simulation=options.use_simulation,
                counter=counter,
                use_index=options.use_index,
            )
        outcome.index = index
        outcome.node_matches = {u: set() for u in pattern.nodes()}
        focus = pattern.focus
        focus_candidates = set(index.candidate_set(focus))
        if focus_restriction is not None:
            # Intersect against the iterable directly — ``&= set(...)`` would
            # materialise a throwaway copy of the restriction per call.
            focus_candidates.intersection_update(focus_restriction)

        if index.is_empty() or not index.global_prune_check():
            outcome.elapsed = timer.elapsed
            return outcome

        radius = pattern.radius()
        monotone = _pattern_is_monotone(pattern)
        ordering = None
        if options.use_potential:
            # One global potential ordering is computed per query; the
            # anchored search intersects it with the dynamically derived
            # candidate pools, so per-candidate re-ranking is unnecessary.
            ordering = potential_ordering(
                pattern, graph, index, use_index=options.use_index
            )
        # One shared search context per query: pattern adjacency, matching
        # order and candidate pools are computed once and reused for every
        # focus candidate (only the anchor binding changes).
        stratified = pattern.stratified()
        shared_context = MatchContext(
            stratified,
            graph,
            candidates={u: index.candidate_set(u) for u in pattern.nodes()},
            candidate_order=ordering,
            anchored_nodes={pattern.focus},
            use_index=options.index_enumeration,
            plan=plan,
            plan_binding=plan_binding,
            vectorized=options.vectorized,
        )
        label_members = None
        dense_locality = None
        if options.use_locality:
            # Per-query label -> (members, size) table for the hoisted local
            # pool restriction (one ``nodes_with_label`` copy per label per
            # query, instead of one pool-wide intersection per pattern node
            # per focus candidate).
            label_members = {}
            for pattern_node in pattern.nodes():
                label = pattern.node_label(pattern_node)
                if label not in label_members:
                    members = graph.nodes_with_label(label)
                    label_members[label] = (members, len(members))
            dense_state = shared_context._dense
            if dense_state is not None:
                # Vectorized locality sweep over the shared dense runs: one
                # instance serves every focus candidate of this query.
                dense_locality = DenseLocality(dense_state, focus, radius)
        pattern_edges = pattern.edges()
        edge_specs = None
        focus_order = None
        resolution = None
        if plan is not None:
            resolution = plan.resolution_for(graph)
            # Lower each live edge to (source, check, degree-row get): the
            # quantifier total ``out_degree(source, label)`` is the length of
            # the snapshot's successor row, so the lowered loop pays one dict
            # probe where the interpreted loop pays a graph method call.
            degree_rows = resolution.out_degree_rows
            edge_specs = tuple(
                (source, check, degree_rows.get(label, _EMPTY_ROWS).get)
                for source, label, check in plan.edge_specs(pattern_edges)
            )
            if options.index_enumeration:
                # The plan's str-rank map orders the focus sweep without
                # stringifying every candidate; equal-str candidates share a
                # rank so the stable sort preserves the key=str order exactly.
                try:
                    focus_order = sorted(
                        focus_candidates, key=resolution.str_ranks.__getitem__
                    )
                except KeyError:
                    focus_order = None
        if focus_order is None:
            focus_order = sorted(focus_candidates, key=str)
        for focus_candidate in focus_order:
            matched, bindings = _verify_focus_candidate(
                pattern,
                graph,
                index,
                focus_candidate,
                radius,
                options,
                counter,
                monotone,
                ordering=ordering,
                shared_context=shared_context,
                pattern_edges=pattern_edges,
                plan=plan,
                plan_binding=plan_binding,
                edge_specs=edge_specs,
                stratified_pattern=stratified if plan is not None else None,
                plan_resolution=resolution,
                label_members=label_members,
                dense_locality=dense_locality,
            )
            if matched:
                outcome.answer.add(focus_candidate)
                for pattern_node, graph_nodes in bindings.items():
                    outcome.node_matches[pattern_node].update(graph_nodes)
        dense_state = shared_context._dense
        if dense_state is not None:
            # Kernel counters are accumulated in-query and flushed once here
            # (query grain — never inside the probe loop).
            dense_state.flush_stats()
    outcome.elapsed = timer.elapsed
    return outcome
