"""A YAGO2-like synthetic knowledge graph.

The paper's knowledge-graph experiments use YAGO2 (1.99M nodes of 13 types,
5.65M typed links).  As with Pokec, the real knowledge base is unavailable
offline, so this generator produces a scaled-down graph with the entity and
relation vocabulary the paper's patterns ``Q4``/``Q5`` and rule ``R7`` query:

* ``person`` nodes, some of whom are professors (``is_a → prof``) and some of
  whom hold doctorates (``is_a → PhD``);
* ``country`` nodes that persons are ``in`` (affiliation) or ``citizen_of``;
* advisor relations ``advised`` from a professor to each of their former
  students, some of whom are professors themselves;
* ``prize`` nodes professors have ``won`` and ``university`` nodes they
  ``graduated`` from.

Planted cohorts guarantee non-trivial answers: a group of UK professors
without a doctorate who advised at least ``p`` students that are UK professors
(``Q4``), their non-UK counterparts (``Q5``), and US prize-winning professors
with at least four graduated students of whom at least one is a foreign
citizen (``R7``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graph.digraph import PropertyGraph
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["YagoConfig", "yago_like_graph"]


@dataclass(frozen=True)
class YagoConfig:
    """Size and density knobs of the YAGO2-like generator."""

    num_persons: int = 260
    num_countries: int = 6
    num_universities: int = 10
    num_prizes: int = 6
    professor_fraction: float = 0.35
    phd_fraction: float = 0.4
    students_per_professor: int = 4
    planted_professors: int = 10
    seed: SeedLike = 11


def yago_like_graph(config: YagoConfig = YagoConfig()) -> PropertyGraph:
    """Generate a YAGO2-like knowledge graph according to *config*."""
    rng = ensure_rng(config.seed)
    graph = PropertyGraph("yago-like")

    persons = [f"p{i}" for i in range(config.num_persons)]
    for person in persons:
        graph.add_node(person, "person")
    # The first two countries are the named constants the paper's patterns
    # refer to ("UK" in Q4/Q5, the US in R7); the rest are generic countries.
    countries = ["UK", "USA"] + [f"country{i}" for i in range(max(0, config.num_countries - 2))]
    for country in countries:
        label = country if country in ("UK", "USA") else "country"
        graph.add_node(country, label)
    universities = [f"univ{i}" for i in range(config.num_universities)]
    for university in universities:
        graph.add_node(university, "university")
    prizes = [f"prize{i}" for i in range(config.num_prizes)]
    for prize in prizes:
        graph.add_node(prize, "prize")
    graph.add_node("prof", "prof")
    graph.add_node("PhD", "PhD")

    uk = "UK"
    usa = "USA"

    professors: List[str] = []
    for person in persons:
        country = rng.choice(countries)
        graph.add_edge(person, country, "citizen_of")
        graph.add_edge(person, rng.choice(universities), "graduated")
        if rng.random() < config.professor_fraction:
            professors.append(person)
            graph.add_edge(person, "prof", "is_a")
            graph.add_edge(person, rng.choice(countries), "in")
        if rng.random() < config.phd_fraction:
            graph.add_edge(person, "PhD", "is_a")
        if rng.random() < 0.15:
            graph.add_edge(person, rng.choice(prizes), "won")

    # Background advisor relations.
    for professor in professors:
        students = rng.sample(persons, min(config.students_per_professor, len(persons)))
        for student in students:
            if student != professor:
                graph.add_edge(professor, student, "advised")

    planted = min(config.planted_professors, len(professors))

    # --- cohort for Q4: UK professors without a PhD who advised >= p
    #     students that are UK professors ----------------------------------
    q4_cohort = professors[:planted]
    for index, professor in enumerate(q4_cohort):
        graph.add_edge(professor, uk, "in")
        if graph.has_edge(professor, "PhD", "is_a"):
            graph.remove_edge(professor, "PhD", "is_a")
        proteges = professors[planted + (index * 3) % max(1, len(professors) - planted):]
        proteges = [p for p in proteges if p != professor][:3]
        for protege in proteges:
            graph.add_edge(professor, protege, "advised")
            graph.add_edge(protege, "prof", "is_a")
            graph.add_edge(protege, uk, "in")

    # --- cohort for Q5: non-UK professors whose advisees are professors
    #     without a PhD ------------------------------------------------------
    q5_cohort = professors[planted : 2 * planted]
    for professor in q5_cohort:
        if graph.has_edge(professor, uk, "in"):
            graph.remove_edge(professor, uk, "in")
        graph.add_edge(professor, usa, "in")
        for protege in list(graph.successors(professor, "advised"))[:2]:
            graph.add_edge(protege, "prof", "is_a")
            if graph.has_edge(protege, "PhD", "is_a"):
                graph.remove_edge(protege, "PhD", "is_a")

    # --- cohort for R7: US professors with >= 2 prizes and >= 4 graduated
    #     students, at least one a foreign citizen ---------------------------
    r7_cohort = professors[2 * planted : 3 * planted]
    for professor in r7_cohort:
        graph.add_edge(professor, usa, "in")
        graph.add_edge(professor, usa, "citizen_of")
        for prize in prizes[:2]:
            graph.add_edge(professor, prize, "won")
        students = rng.sample(persons, 4)
        for student_index, student in enumerate(students):
            if student == professor:
                continue
            graph.add_edge(professor, student, "advised")
            if student_index == 0:
                foreign = countries[-1]
                if graph.has_edge(student, usa, "citizen_of"):
                    graph.remove_edge(student, usa, "citizen_of")
                graph.add_edge(student, foreign, "citizen_of")

    return graph
