"""Synthetic datasets standing in for Pokec, YAGO2 and the GTgraph workloads."""

from repro.datasets.pokec_like import PokecConfig, pokec_like_graph
from repro.datasets.update_workload import WorkloadOp, update_workload
from repro.datasets.workloads import (
    DATASET_NAMES,
    benchmark_graph,
    paper_pattern,
    paper_rule,
    workload_patterns,
    zipf_workload,
)
from repro.datasets.yago_like import YagoConfig, yago_like_graph

__all__ = [
    "PokecConfig",
    "pokec_like_graph",
    "YagoConfig",
    "yago_like_graph",
    "benchmark_graph",
    "paper_pattern",
    "paper_rule",
    "workload_patterns",
    "zipf_workload",
    "update_workload",
    "WorkloadOp",
    "DATASET_NAMES",
]
