"""Reproducible interleaved update/query streams (the dynamic-graph workload).

Production traffic against a social graph is not queries *or* updates — it is
both, interleaved: a Zipf-skewed query mix (a few hot patterns dominate)
punctuated by edge churn (follows appear, likes disappear) whose endpoints
are spread uniformly over the graph.  :func:`update_workload` generates
exactly that stream, deterministically under a seed, for the incremental
benchmark (``benchmarks/bench_incremental.py``) and the delta-layer tests.

The generator **simulates** the stream against a scratch copy of the graph
while emitting it, so every :class:`~repro.delta.GraphDelta` in the stream is
guaranteed to apply cleanly when the consumer replays the operations in
order: deletes name edges that exist at that point of the stream, inserts
name edges that do not, and the scratch copy is thrown away afterwards (the
caller's graph is never touched).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.delta.ops import GraphDelta
from repro.graph.digraph import Edge, PropertyGraph
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.utils.errors import ReproError
from repro.utils.rng import SeedLike, ensure_rng, weighted_choice

__all__ = ["WorkloadOp", "update_workload"]


@dataclass(frozen=True)
class WorkloadOp:
    """One element of an interleaved stream: a query or an update batch.

    ``kind`` is ``"query"`` (then ``pattern`` is set) or ``"update"`` (then
    ``delta`` is set).  Exactly one of the two payload fields is non-None.
    """

    kind: str
    pattern: Optional[QuantifiedGraphPattern] = None
    delta: Optional[GraphDelta] = None

    @property
    def is_update(self) -> bool:
        return self.kind == "update"


def _random_edge_insert(
    rng, scratch: PropertyGraph, nodes: List, labels: List[str]
) -> Optional[Edge]:
    """A uniform non-existing, non-loop edge over the current scratch state."""
    for _ in range(32):  # rejection sampling; dense graphs may need retries
        source, target = rng.choice(nodes), rng.choice(nodes)
        label = rng.choice(labels)
        if source != target and not scratch.has_edge(source, target, label):
            return (source, target, label)
    return None


def update_workload(
    graph: PropertyGraph,
    patterns: Sequence[QuantifiedGraphPattern],
    length: int,
    update_fraction: float = 0.25,
    ops_per_update: int = 2,
    exponent: float = 1.1,
    seed: SeedLike = 0,
) -> List[WorkloadOp]:
    """An interleaved stream of Zipf-skewed queries and uniform edge churn.

    Parameters
    ----------
    graph:
        The starting graph; copied internally, never mutated.
    patterns:
        The unique query pool; the *i*-th pattern (1-based, given order) is
        drawn with probability ∝ ``1 / i**exponent``, the same heavy-tail
        regime as :func:`repro.datasets.workloads.zipf_workload`.
    length:
        Total number of stream elements (queries + update batches).
    update_fraction:
        Fraction of stream positions that are update batches (0 ≤ f < 1).
    ops_per_update:
        Edge operations per update batch; each is an insert or a delete with
        equal probability, endpoints uniform over the evolving node set.
    seed:
        Determinism: equal arguments produce the identical stream, deltas
        included — replaying is how the benchmark compares engines fairly.

    >>> from repro.graph.generators import small_world_social_graph
    >>> from repro.datasets.workloads import workload_patterns
    >>> g = small_world_social_graph(60, 150, seed=3)
    >>> stream = update_workload(g, workload_patterns(g, count=2, seed=5), 20, seed=9)
    >>> len(stream), any(op.is_update for op in stream)
    (20, True)
    >>> g.version == small_world_social_graph(60, 150, seed=3).version
    True
    """
    if length < 0:
        raise ReproError("workload length must be non-negative")
    if not patterns:
        raise ReproError("update_workload needs at least one pattern")
    if not 0 <= update_fraction < 1:
        raise ReproError("update_fraction must be in [0, 1)")
    if ops_per_update <= 0:
        raise ReproError("ops_per_update must be positive")
    if exponent <= 0:
        raise ReproError("the Zipf exponent must be positive")

    rng = ensure_rng(seed)
    scratch = graph.copy(name=f"{graph.name}#workload-scratch")
    nodes = list(scratch.nodes())
    labels = sorted({label for _, _, label in scratch.edges()})
    if not labels:
        raise ReproError("update_workload needs a graph with at least one edge")
    weights = [1.0 / (rank ** exponent) for rank in range(1, len(patterns) + 1)]

    # The evolving edge list, maintained incrementally (append on insert,
    # swap-remove on delete) so each delete draw is O(1) instead of a full
    # |E| walk per operation.  Dict iteration order seeds it deterministically.
    edge_list: List[Edge] = list(scratch.edges())
    edge_position = {edge: position for position, edge in enumerate(edge_list)}

    def track_insert(edge: Edge) -> None:
        edge_position[edge] = len(edge_list)
        edge_list.append(edge)

    def track_delete(edge: Edge) -> None:
        position = edge_position.pop(edge)
        last = edge_list.pop()
        if last != edge:
            edge_list[position] = last
            edge_position[last] = position

    stream: List[WorkloadOp] = []
    for _ in range(length):
        if rng.random() < update_fraction:
            inserts: List[Edge] = []
            deletes: List[Edge] = []
            for _ in range(ops_per_update):
                if rng.random() < 0.5:
                    edge = _random_edge_insert(rng, scratch, nodes, labels)
                    # An edge the batch already deleted must not be re-added:
                    # GraphDelta rejects an edge in both lists, and dropping
                    # the delete instead would reorder the batch's net effect.
                    if edge is not None and edge not in deletes:
                        inserts.append(edge)
                        scratch.add_edge(*edge)
                        track_insert(edge)
                else:
                    # Rejection-sample a pre-batch edge: draws landing on an
                    # edge inserted earlier in this same batch are re-drawn
                    # (GraphDelta applies inserts before deletes, not in the
                    # draw order, so every delete must name a pre-batch edge).
                    for _ in range(32):
                        if not edge_list:
                            break
                        edge = rng.choice(edge_list)
                        if edge not in inserts:
                            deletes.append(edge)
                            scratch.remove_edge(*edge)
                            track_delete(edge)
                            break
            if inserts or deletes:
                stream.append(
                    WorkloadOp(
                        kind="update",
                        delta=GraphDelta.build(
                            edge_inserts=inserts, edge_deletes=deletes
                        ),
                    )
                )
                continue
            # Every op of the batch failed to draw (a near-complete graph can
            # exhaust the insert sampler): emit a query instead, so the stream
            # always has exactly `length` elements.
        stream.append(
            WorkloadOp(kind="query", pattern=weighted_choice(rng, list(patterns), weights))
        )
    return stream
