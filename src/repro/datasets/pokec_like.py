"""A Pokec-like synthetic social graph.

The paper's social-network experiments run on Pokec (1.63M nodes of 269 types,
30.6M edges of 11 types such as ``follow`` and ``like``).  The real dump is
unavailable offline and far beyond pure-Python scale, so this module generates
a scaled-down graph with the *same vocabulary and the same behavioural
structure* the paper's patterns and rules query:

* ``person`` nodes that ``follow`` each other (small-world + preferential
  attachment), ``live_in`` cities, join ``music_club``s, have ``hobby``s and
  are ``is_friend`` with each other;
* ``album`` and ``product`` nodes that persons ``like``, ``recom``(mend),
  ``buy``, ``post`` about or give a ``bad_rating``;
* **planted cohorts** that guarantee the paper's example patterns are
  non-trivially satisfiable: a cohort of music-club members at least 80% of
  whose followees like a featured album (pattern ``Q1`` / rule ``R1``); a
  cohort whose followees *all* recommend a featured product (``Q2``); a cohort
  that additionally follows a detractor who gave the product a bad rating
  (``Q3``); plus hobby/friendship cohorts for the mined rules ``R5``/``R6``.

The cohort sizes scale with ``num_users`` so benchmarks at different scales
keep the same answer-density shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graph.digraph import PropertyGraph
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["PokecConfig", "pokec_like_graph"]


@dataclass(frozen=True)
class PokecConfig:
    """Size and density knobs of the Pokec-like generator."""

    num_users: int = 300
    num_albums: int = 12
    num_products: int = 8
    num_clubs: int = 6
    num_cities: int = 8
    num_hobbies: int = 10
    avg_followees: int = 6
    like_probability: float = 0.25
    buy_probability: float = 0.15
    planted_fraction: float = 0.1
    seed: SeedLike = 7


def _add_entities(graph: PropertyGraph, prefix: str, label: str, count: int) -> List[str]:
    nodes = [f"{prefix}{i}" for i in range(count)]
    for node in nodes:
        graph.add_node(node, label)
    return nodes


def pokec_like_graph(config: PokecConfig = PokecConfig()) -> PropertyGraph:
    """Generate a Pokec-like social graph according to *config*."""
    rng = ensure_rng(config.seed)
    graph = PropertyGraph("pokec-like")

    users = _add_entities(graph, "u", "person", config.num_users)
    albums = _add_entities(graph, "album", "album", config.num_albums)
    products = _add_entities(graph, "prod", "product", config.num_products)
    clubs = _add_entities(graph, "club", "music_club", config.num_clubs)
    cities = _add_entities(graph, "city", "city", config.num_cities)
    hobbies = _add_entities(graph, "hobby", "hobby", config.num_hobbies)

    # The featured product plays the role of "Redmi 2A" in the paper's Q2/Q3:
    # it is a named constant, so it carries its own label.
    featured_product = "Redmi_2A"
    graph.add_node(featured_product, "Redmi_2A")
    products = [featured_product] + products
    featured_album = albums[0]

    # --- background social structure -------------------------------------
    for user in users:
        graph.add_edge(user, rng.choice(cities), "live_in")
        if rng.random() < 0.5:
            graph.add_edge(user, rng.choice(clubs), "in")
        if rng.random() < 0.6:
            graph.add_edge(user, rng.choice(hobbies), "hobby")
        followees = rng.sample(users, min(config.avg_followees, len(users)))
        for followee in followees:
            if followee != user:
                graph.add_edge(user, followee, "follow")
        for album in albums:
            # Background album likes are kept sparse so that the "80% of my
            # followees like an album" condition of Q1/R1 is rare outside the
            # planted cohort (matching the selectivity the paper relies on).
            if rng.random() < config.like_probability / 6:
                graph.add_edge(user, album, "like")
        for product in products:
            if rng.random() < config.like_probability / 3:
                graph.add_edge(user, product, "recom")
            if rng.random() < config.buy_probability / 2:
                graph.add_edge(user, product, "buy")
        if rng.random() < 0.2:
            graph.add_edge(user, rng.choice(products), "post")
        if rng.random() < 0.1:
            # A minority of users actively post about two competing products
            # (the "Mac vs PC" behaviour that rule R2 quantifies over).
            for product in rng.sample(products, min(2, len(products))):
                graph.add_edge(user, product, "post")
        friends = rng.sample(users, 2)
        for friend in friends:
            if friend != user:
                graph.add_edge(user, friend, "is_friend")

    planted = max(3, int(config.planted_fraction * config.num_users))

    # --- cohort for Q1 / R1: music-club members whose followees like the
    #     featured album (>= 80%) and who buy it ---------------------------
    q1_cohort = users[:planted]
    for user in q1_cohort:
        graph.add_edge(user, clubs[0], "in")
        followees = sorted(graph.successors(user, "follow"), key=str)
        if not followees:
            followees = [users[(users.index(user) + 1) % len(users)]]
            graph.add_edge(user, followees[0], "follow")
        keep = max(1, int(round(len(followees) * 0.9)))
        for followee in followees[:keep]:
            graph.add_edge(followee, featured_album, "like")
        graph.add_edge(user, featured_album, "like")
        graph.add_edge(user, featured_album, "buy")

    # --- cohort for Q2: every followee recommends the featured product ----
    q2_cohort = users[planted : 2 * planted]
    for user in q2_cohort:
        for followee in graph.successors(user, "follow"):
            graph.add_edge(followee, featured_product, "recom")
        graph.add_edge(user, featured_product, "buy")

    # --- cohort for Q3: like Q2 but additionally follow a detractor -------
    q3_cohort = users[2 * planted : 3 * planted]
    detractors = users[-max(2, planted // 2):]
    for detractor in detractors:
        graph.add_edge(detractor, featured_product, "bad_rating")
    for index, user in enumerate(q3_cohort):
        for followee in graph.successors(user, "follow"):
            graph.add_edge(followee, featured_product, "recom")
        graph.add_edge(user, detractors[index % len(detractors)], "follow")

    # --- cohorts for the mined rules R5/R6: shared hobbies and friendships -
    r5_cohort = users[3 * planted : 4 * planted]
    travel = hobbies[0]
    for user in r5_cohort:
        graph.add_edge(user, travel, "hobby")
        for friend in list(graph.successors(user, "is_friend"))[:2]:
            graph.add_edge(friend, travel, "hobby")

    return graph
