"""PQMatch: the parallel quantified-matching coordinator (paper Section 5).

The coordinator implements the algorithm of Figure 6:

1. **Pre-processing** — partition the graph once with DPar into a d-hop
   preserving, balanced partition.  The same partition serves every QGP whose
   radius is at most ``d``; a query with a larger radius triggers the
   incremental partition extension instead of a re-partition.
2. **Posting** — ship the pattern to every worker; each worker evaluates it
   locally on its fragment (``mQMatch``), restricted to the focus candidates
   it *owns*, so partial answers neither overlap nor miss matches
   (Lemma 9(1)).
3. **Assembly** — union the partial answers at the coordinator.

Besides the paper's PQMatch, the factory functions at the bottom build the
experiment baselines: ``PQMatchS`` (single "thread" per worker, i.e. no
intra-fragment parallelism), ``PQMatchN`` (no incremental handling of negated
edges inside the workers) and ``PEnum`` (workers run the enumerate-then-verify
baseline).
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Set

from repro.graph.digraph import PropertyGraph
from repro.matching.dmatch import DMatchOptions
from repro.matching.enumerate import EnumMatcher
from repro.matching.qmatch import QMatch
from repro.matching.result import FragmentResult, MatchResult, ParallelMatchResult
from repro.parallel.executor import make_executor
from repro.parallel.partition import DPar, HopPreservingPartition
from repro.parallel.worker import FragmentTask, match_fragment, mqmatch_fragment
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.utils.counters import WorkCounter
from repro.utils.errors import PartitionError
from repro.utils.rng import SeedLike
from repro.utils.timing import Timer

__all__ = [
    "PQMatch",
    "pqmatch_engine",
    "pqmatch_s_engine",
    "pqmatch_n_engine",
    "penum_engine",
]

NodeId = Hashable


class _EnumFragmentEngine:
    """Adapter so the Enum baseline can be used as a per-fragment engine."""

    name = "Enum"

    def __init__(self) -> None:
        self._matcher = EnumMatcher()

    def evaluate(
        self,
        pattern: QuantifiedGraphPattern,
        graph: PropertyGraph,
        focus_restriction: Optional[Set[NodeId]] = None,
    ) -> MatchResult:
        result = self._matcher.evaluate(pattern, graph)
        if focus_restriction is not None:
            result.answer &= set(focus_restriction)
        return result


class PQMatch:
    """Parallel quantified matching over a d-hop preserving partition.

    Parameters
    ----------
    num_workers:
        The number of fragments / workers ``n``.
    d:
        Hop radius preserved by the partition (defaults to 2, the radius of
        99% of real-world queries according to the paper).
    executor:
        One of ``"serial"``, ``"thread"``, ``"process"``, ``"simulated"``.
    engine:
        The per-fragment sequential engine; defaults to the full QMatch.
    threads:
        Intra-fragment parallelism ``b`` of mQMatch (1 disables it).
    strategy:
        Base partition strategy handed to :class:`DPar` (``"random"``,
        ``"bfs"`` or the degree-array-driven ``"degree"``).
    use_index:
        Let the partitioner run its per-node d-hop expansions over the merged
        undirected CSR of the compiled :class:`repro.index.GraphIndex` (and,
        for the ``"degree"`` strategy, read degrees from its arrays).  The
        partition is identical either way; only the build time differs.
    """

    def __init__(
        self,
        num_workers: int = 4,
        d: int = 2,
        executor: str = "serial",
        engine: Optional[object] = None,
        threads: int = 1,
        capacity_factor: float = 1.6,
        seed: SeedLike = 0,
        name: Optional[str] = None,
        strategy: str = "random",
        use_index: bool = True,
    ) -> None:
        if num_workers <= 0:
            raise PartitionError("num_workers must be positive")
        self.num_workers = num_workers
        self.d = d
        self.executor_kind = executor
        self.engine = engine if engine is not None else QMatch()
        self.threads = max(1, threads)
        self.partitioner = DPar(
            d=d, capacity_factor=capacity_factor, seed=seed,
            strategy=strategy, use_index=use_index,
        )
        self.name = name or f"PQMatch(n={num_workers})"
        self._partition: Optional[HopPreservingPartition] = None
        self._partition_graph_id: Optional[int] = None
        self._partition_version: Optional[int] = None
        self._executor = None

    # -------------------------------------------------------------- executor

    @property
    def executor(self):
        """The backend running fragment tasks, created once and kept.

        Persistence matters for the ``"process"`` backend: its worker pool
        and per-worker decoded-snapshot caches live exactly as long as the
        executor, so re-evaluating patterns on the same partition ships each
        fragment once instead of once per query.  Call :meth:`close` (or use
        the coordinator as a context manager) to release pool processes.
        """
        if self._executor is None:
            self._executor = make_executor(self.executor_kind, self.num_workers)
        return self._executor

    @property
    def current_executor(self):
        """The executor if one exists, else ``None`` — never creates one.

        Telemetry readers (e.g. the serving layer's ``worker_rebuilds``)
        use this so that inspecting a coordinator cannot lazily spin up —
        or, after :meth:`close`, resurrect — a worker pool.
        """
        return self._executor

    def close(self) -> None:
        """Shut down the executor backend (worker pools, payload caches)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "PQMatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -------------------------------------------------------------- partition

    def partition(self, graph: PropertyGraph, force: bool = False) -> HopPreservingPartition:
        """Partition *graph* (cached: reused for subsequent queries on the same graph).

        The cache keys on the graph's mutation counter as well as its
        identity: a structural mutation invalidates the partition (its
        fragment graphs describe the old structure), triggers a re-partition,
        and — through the fresh fragment payload checksums — makes the
        process executor re-ship the fragments.
        """
        if (
            force
            or self._partition is None
            or self._partition_graph_id != id(graph)
            or self._partition_version != graph.version
        ):
            self._partition = self.partitioner.partition(graph, self.num_workers)
            self._partition_graph_id = id(graph)
            self._partition_version = graph.version
        return self._partition

    def ensure_radius(self, graph: PropertyGraph, radius: int) -> HopPreservingPartition:
        """Make sure the cached partition preserves at least *radius* hops."""
        partition = self.partition(graph)
        if radius > partition.d:
            partition = self.partitioner.extend(partition, radius)
            self._partition = partition
        return partition

    def apply_delta(self, graph: PropertyGraph, delta, inverse=None) -> List:
        """Propagate an applied :class:`~repro.delta.GraphDelta` into the
        cached partition and the live executor.

        Call **after** ``repro.delta.apply_delta(graph, delta)`` mutated the
        graph (*inverse* is that call's return value).  The cached partition
        is maintained in place — ownership churn, halo growth, per-fragment
        sub-deltas applied to materialised fragment graphs with their compiled
        indexes *refreshed* — and the partition cache is re-stamped to the
        post-delta version, so the next query neither re-partitions nor (on
        the process backend, whose payloads are re-keyed to delta chains)
        re-ships or recreates the pool.

        A partition that is missing, bound to another graph, or more than
        this one batch behind is simply dropped: the next query rebuilds it
        from scratch, which is always correct.  Returns the per-fragment
        :class:`~repro.delta.FragmentUpdate` list (empty when nothing was
        maintained).
        """
        if not delta.is_structural():
            return []
        if (
            self._partition is None
            or self._partition_graph_id != id(graph)
            or self._partition_version != graph.version - 1
        ):
            self._partition = None
            self._partition_graph_id = None
            self._partition_version = None
            return []
        from repro.delta.partition import apply_delta_to_partition
        from repro.index.snapshot import GraphIndex

        cached = graph.cached_index()
        if cached is not None and cached.version == graph.version - 1:
            index = cached.refreshed(delta)
        else:
            index = GraphIndex.for_graph(graph)
        updates = apply_delta_to_partition(
            self._partition, delta, inverse=inverse, index=index
        )
        self._partition_version = graph.version
        executor = self._executor
        if updates and executor is not None and hasattr(executor, "apply_delta"):
            executor.apply_delta(updates)
        return updates

    # ------------------------------------------------------------------ tasks

    def fragment_tasks(
        self,
        pattern: QuantifiedGraphPattern,
        partition: "HopPreservingPartition",
        fingerprint: Optional[str] = None,
        plan=None,
        plan_binding=None,
    ) -> List[FragmentTask]:
        """One :class:`FragmentTask` per non-empty fragment for *pattern*.

        This is the single place task construction lives: :meth:`evaluate`
        uses it for one pattern, and the serving layer's batched dispatch
        (:mod:`repro.service.server`) concatenates it across many patterns —
        both paths must stay byte-identical, so neither re-implements it.

        The serving layer additionally stamps each task with the pattern's
        canonical ``fingerprint``, the coordinator-side compiled ``plan`` and
        the ``plan_binding``; in-process backends use the plan object
        directly, while the process pool ships only the (fingerprint,
        binding) reference and workers compile-or-reuse locally.
        """
        return [
            FragmentTask(
                fragment_id=fragment.fragment_id,
                fragment_graph=partition.fragment_graph(fragment),
                owned_nodes=set(fragment.owned_nodes),
                pattern=pattern,
                engine=self.engine,
                fingerprint=fingerprint,
                plan=plan,
                plan_binding=plan_binding,
            )
            for fragment in partition.fragments
            if fragment.owned_nodes
        ]

    def run_fragment_tasks(self, tasks: List[FragmentTask]) -> List[FragmentResult]:
        """Run *tasks* through this coordinator's execution mode, in order.

        With intra-fragment threading enabled each task fans out itself via
        ``mqmatch_fragment``; otherwise the whole list ships to the persistent
        executor as one round.
        """
        if self.threads > 1:
            return [
                mqmatch_fragment(
                    task.pattern,
                    task.fragment_graph,
                    task.owned_nodes,
                    engine=task.engine,
                    fragment_id=task.fragment_id,
                    threads=self.threads,
                    plan=task.plan,
                    plan_binding=task.plan_binding,
                )
                for task in tasks
            ]
        return self.executor.run(tasks)

    # ------------------------------------------------------------------ query

    def evaluate(
        self, pattern: QuantifiedGraphPattern, graph: PropertyGraph
    ) -> ParallelMatchResult:
        """Compute ``Q(xo, G)`` by fragment-parallel evaluation."""
        pattern.validate()
        radius = pattern.radius()
        with Timer() as partition_timer:
            partition = self.ensure_radius(graph, radius)

        tasks = self.fragment_tasks(pattern, partition)
        counter = WorkCounter()
        with Timer() as timer:
            fragment_results = self.run_fragment_tasks(tasks)
        answer: Set[NodeId] = set()
        for fragment_result in fragment_results:
            answer |= fragment_result.answer
            counter.merge(fragment_result.counter)

        return ParallelMatchResult(
            answer=answer,
            fragments=list(fragment_results),
            counter=counter,
            elapsed=timer.elapsed,
            partition_elapsed=partition_timer.elapsed,
            engine=self.name,
        )

    def evaluate_answer(self, pattern: QuantifiedGraphPattern, graph: PropertyGraph) -> Set[NodeId]:
        """Convenience wrapper returning only the answer set."""
        return self.evaluate(pattern, graph).answer


# ------------------------------------------------------------------ factories


def pqmatch_engine(
    num_workers: int = 4, d: int = 2, executor: str = "serial", threads: int = 2, seed: SeedLike = 0
) -> PQMatch:
    """The paper's PQMatch: incremental QMatch per fragment + intra-fragment threads."""
    return PQMatch(
        num_workers=num_workers,
        d=d,
        executor=executor,
        engine=QMatch(use_incremental=True),
        threads=threads,
        seed=seed,
        name=f"PQMatch(n={num_workers})",
    )


def pqmatch_s_engine(
    num_workers: int = 4, d: int = 2, executor: str = "serial", seed: SeedLike = 0
) -> PQMatch:
    """PQMatchS: the single-thread-per-worker variant (no intra-fragment parallelism)."""
    return PQMatch(
        num_workers=num_workers,
        d=d,
        executor=executor,
        engine=QMatch(use_incremental=True),
        threads=1,
        seed=seed,
        name=f"PQMatchS(n={num_workers})",
    )


def pqmatch_n_engine(
    num_workers: int = 4, d: int = 2, executor: str = "serial", seed: SeedLike = 0
) -> PQMatch:
    """PQMatchN: workers recompute positified patterns instead of IncQMatch."""
    return PQMatch(
        num_workers=num_workers,
        d=d,
        executor=executor,
        engine=QMatch(use_incremental=False),
        threads=1,
        seed=seed,
        name=f"PQMatchN(n={num_workers})",
    )


def penum_engine(
    num_workers: int = 4, d: int = 2, executor: str = "serial", seed: SeedLike = 0
) -> PQMatch:
    """PEnum: workers run the enumerate-then-verify baseline on their fragments."""
    return PQMatch(
        num_workers=num_workers,
        d=d,
        executor=executor,
        engine=_EnumFragmentEngine(),
        threads=1,
        seed=seed,
        name=f"PEnum(n={num_workers})",
    )
