"""Multiple Knapsack assignment used by the d-hop preserving partitioner.

DPar (paper Section 5.2) must place the d-hop neighbourhood ``Nd(v)`` of every
border node ``v`` onto some fragment without blowing the fragment's size
budget, while *covering* as many border nodes as possible.  The paper reduces
this to the Multiple Knapsack Problem (MKP): every ``Nd(v)`` is an item of
value 1 and weight ``|Nd(v)|``, every fragment a knapsack with capacity
``c·|G|/n − |Fi|``, and the objective is to maximise the number of packed
items.  It then invokes the PTAS of Chekuri & Khanna.

A full PTAS is overkill for a reproduction whose instances have a few thousand
items, so this module provides:

* :func:`greedy_mkp` — the classic density-greedy assignment (sort items by
  increasing weight, place each into the eligible bin with the most remaining
  capacity).  For unit-value items this is a ½-approximation and in practice
  packs almost everything.
* :func:`mkp_assign` — greedy followed by a bounded local-improvement pass
  (try to re-pack currently-unassigned items by relocating one assigned item),
  which tightens the result toward the (1+ε) behaviour the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = ["KnapsackItem", "greedy_mkp", "mkp_assign"]

ItemId = Hashable


@dataclass(frozen=True)
class KnapsackItem:
    """An item to pack: *weight* is ``|Nd(v)|`` (or the marginal growth), value 1 by default."""

    item_id: ItemId
    weight: float
    value: float = 1.0


def greedy_mkp(
    items: Sequence[KnapsackItem],
    capacities: Sequence[float],
    preferred_bins: Optional[Dict[ItemId, int]] = None,
) -> Tuple[Dict[ItemId, int], List[ItemId]]:
    """Greedy multiple-knapsack assignment.

    Items are considered lightest-first (for unit values that maximises the
    count of packed items); each item goes to its *preferred* bin when that bin
    still has room, otherwise to the eligible bin with the largest remaining
    capacity.

    Returns ``(assignment, unassigned)`` where *assignment* maps item id to
    bin index.
    """
    remaining = list(capacities)
    assignment: Dict[ItemId, int] = {}
    unassigned: List[ItemId] = []
    for item in sorted(items, key=lambda it: (it.weight, str(it.item_id))):
        preferred = preferred_bins.get(item.item_id) if preferred_bins else None
        target = None
        if preferred is not None and 0 <= preferred < len(remaining):
            if remaining[preferred] >= item.weight:
                target = preferred
        if target is None:
            best_index = None
            best_capacity = -1.0
            for index, capacity in enumerate(remaining):
                if capacity >= item.weight and capacity > best_capacity:
                    best_index = index
                    best_capacity = capacity
            target = best_index
        if target is None:
            unassigned.append(item.item_id)
            continue
        assignment[item.item_id] = target
        remaining[target] -= item.weight
    return assignment, unassigned


def mkp_assign(
    items: Sequence[KnapsackItem],
    capacities: Sequence[float],
    preferred_bins: Optional[Dict[ItemId, int]] = None,
    improvement_rounds: int = 1,
) -> Tuple[Dict[ItemId, int], List[ItemId]]:
    """Greedy assignment followed by a bounded local-improvement pass.

    The improvement pass tries to place each unassigned item by moving exactly
    one already-assigned item to a different bin that can still hold it — a
    cheap exchange step that recovers most of the gap to the optimum on the
    balanced instances DPar produces.
    """
    by_id = {item.item_id: item for item in items}
    assignment, unassigned = greedy_mkp(items, capacities, preferred_bins)

    def remaining_capacities() -> List[float]:
        remaining = list(capacities)
        for item_id, bin_index in assignment.items():
            remaining[bin_index] -= by_id[item_id].weight
        return remaining

    for _ in range(max(0, improvement_rounds)):
        if not unassigned:
            break
        still_unassigned: List[ItemId] = []
        for item_id in unassigned:
            item = by_id[item_id]
            remaining = remaining_capacities()
            placed = False
            # Direct placement may have become possible after earlier moves.
            for bin_index, capacity in enumerate(remaining):
                if capacity >= item.weight:
                    assignment[item_id] = bin_index
                    placed = True
                    break
            if placed:
                continue
            # Try relocating one assigned item to free enough space.
            for other_id, other_bin in list(assignment.items()):
                other = by_id[other_id]
                freed = remaining[other_bin] + other.weight
                if freed < item.weight:
                    continue
                for new_bin, capacity in enumerate(remaining):
                    if new_bin == other_bin:
                        continue
                    if capacity >= other.weight:
                        assignment[other_id] = new_bin
                        assignment[item_id] = other_bin
                        placed = True
                        break
                if placed:
                    break
            if not placed:
                still_unassigned.append(item_id)
        unassigned = still_unassigned
    return assignment, unassigned
