"""DPar: balanced, d-hop preserving graph partition (paper Section 5.2).

A *d-hop preserving partition* distributes a graph over ``n`` fragments such
that

* it is **balanced** — every fragment's size stays under ``c · |G| / n`` for a
  small constant ``c``, and
* it is **covering** — every node ``v`` it covers has its whole d-hop
  neighbourhood ``Nd(v)`` inside a single fragment, so a QGP of radius ≤ d can
  be answered for ``v`` entirely locally (no inter-fragment communication).

The partition is **complete** when every node of the graph is covered.  DPar
builds one in the paper's three phases:

1. a *base partition* assigns every node a home fragment of roughly equal
   size (we grow BFS regions, which keeps neighbourhoods together far better
   than hashing);
2. *border nodes* — nodes whose ``Nd`` spills outside their home fragment —
   have their neighbourhoods packed onto fragments by a Multiple-Knapsack
   assignment (value 1 per covered node, weight = the marginal number of
   nodes the fragment would gain, capacity = the balance budget);
3. a *completion* pass assigns every still-uncovered node to the fragment
   that minimises the resulting size imbalance.

Every node ends up *owned* by exactly one fragment that contains its full
``Nd``; replicated (non-owned) nodes may appear in several fragments.  The
coordinator restricts each worker to focus candidates it owns, which makes the
union of the per-fragment answers exactly the global answer (Lemma 9(1)) —
a property the integration tests assert.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set

from repro.graph.digraph import PropertyGraph
from repro.graph.traversal import nodes_within_hops
from repro.parallel.mkp import KnapsackItem, mkp_assign
from repro.utils.errors import PartitionError
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.timing import Timer

__all__ = ["Fragment", "HopPreservingPartition", "DPar", "base_partition"]

NodeId = Hashable


@dataclass
class Fragment:
    """One fragment of a d-hop preserving partition.

    ``owned_nodes`` are the nodes this fragment answers for (each graph node
    is owned by exactly one fragment); ``node_set`` additionally contains the
    replicated d-hop context of the owned nodes.  ``graph`` is materialised
    lazily by :meth:`HopPreservingPartition.fragment_graph`.
    """

    fragment_id: int
    owned_nodes: Set[NodeId] = field(default_factory=set)
    node_set: Set[NodeId] = field(default_factory=set)
    border_nodes: Set[NodeId] = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.node_set)


@dataclass
class HopPreservingPartition:
    """The result of DPar: fragments plus bookkeeping for the quality metrics."""

    d: int
    fragments: List[Fragment]
    source: PropertyGraph
    elapsed: float = 0.0
    _graph_cache: Dict[int, PropertyGraph] = field(default_factory=dict, repr=False)
    _owner_map: Optional[Dict[NodeId, int]] = field(default=None, repr=False)

    # ------------------------------------------------------------ accessors

    @property
    def num_fragments(self) -> int:
        return len(self.fragments)

    def owner_of(self, node: NodeId) -> Optional[int]:
        """The fragment owning *node* (``None`` for unknown nodes).

        The coordinator resolves ownership per focus candidate, so this is a
        hot accessor: the node → fragment map is built once on first use
        (ownership is fixed after DPar returns) instead of scanning every
        fragment's owned set per call.
        """
        owner_map = self._owner_map
        if owner_map is None:
            owner_map = {
                node_id: fragment.fragment_id
                for fragment in self.fragments
                for node_id in fragment.owned_nodes
            }
            self._owner_map = owner_map
        return owner_map.get(node)

    def fragment_graph(self, fragment: Fragment) -> PropertyGraph:
        """Materialise the subgraph induced by the fragment's node set.

        The materialised graph is cached per fragment: the paper partitions
        once and reuses the fragments for every query of radius ≤ d, so the
        coordinator should not pay the induced-subgraph cost per query.
        """
        cached = self._graph_cache.get(fragment.fragment_id)
        if cached is None:
            cached = self.source.induced_subgraph(
                fragment.node_set, name=f"{self.source.name}#F{fragment.fragment_id}"
            )
            self._graph_cache[fragment.fragment_id] = cached
        return cached

    # -------------------------------------------------------------- metrics

    def is_covering(self) -> bool:
        """Every owned node's Nd must be inside its fragment.

        Deliberately runs the dict-backed BFS even when the partition was
        built over the compiled CSR: a validity check should not share the
        machinery of the thing it validates.
        """
        for fragment in self.fragments:
            for node in fragment.owned_nodes:
                neighborhood = nodes_within_hops(self.source, node, self.d)
                if not neighborhood <= fragment.node_set:
                    return False
        return True

    def is_complete(self) -> bool:
        """Every node of the source graph is owned by some fragment."""
        owned = set()
        for fragment in self.fragments:
            owned |= fragment.owned_nodes
        return owned == set(self.source.nodes())

    def skew(self) -> float:
        """Smallest fragment size / largest fragment size (1.0 = perfectly even)."""
        sizes = [max(fragment.size, 0) for fragment in self.fragments]
        largest = max(sizes, default=0)
        if largest == 0:
            return 1.0
        return min(sizes) / largest

    def replication_factor(self) -> float:
        """Total stored nodes across fragments divided by |V| (1.0 = no replication)."""
        if self.source.num_nodes == 0:
            return 1.0
        return sum(fragment.size for fragment in self.fragments) / self.source.num_nodes

    def statistics(self) -> Dict[str, float]:
        return {
            "fragments": float(self.num_fragments),
            "skew": self.skew(),
            "replication": self.replication_factor(),
            "largest": float(max((f.size for f in self.fragments), default=0)),
            "smallest": float(min((f.size for f in self.fragments), default=0)),
            "elapsed": self.elapsed,
        }


def base_partition(
    graph: PropertyGraph,
    num_fragments: int,
    seed: SeedLike = None,
    strategy: str = "random",
    use_index: bool = True,
) -> List[Set[NodeId]]:
    """A balanced *base* partition of the node set into ``num_fragments`` blocks.

    Three strategies are provided, standing in for the off-the-shelf balanced
    partitioners the paper builds on:

    * ``"random"`` (default) — shuffle the nodes and deal them round-robin.
      Block sizes are perfectly balanced and, because node placement is
      independent of the graph structure, the *matching work* assigned to each
      fragment is balanced in expectation too — which is what the parallel
      coordinator cares about.
    * ``"bfs"`` — grow blocks along BFS order from random seeds, keeping
      neighbourhoods together.  This minimises the replication added by the
      d-hop extension at the price of possibly clustering expensive nodes
      (e.g. a dense community) into one fragment.
    * ``"degree"`` — balance *work*, not node counts: matching cost per node
      tracks its degree, so hub nodes are the expensive ones.  Nodes are
      placed in decreasing total-degree order (an LPT greedy) onto the block
      with the least accumulated degree weight; degrees come from the
      compiled :class:`repro.index.GraphIndex` degree arrays (``use_index``
      falls back to per-node dict scans).  Equal block *weight* with nearly
      equal counts — the right base partition for skewed social graphs.
    """
    if num_fragments <= 0:
        raise PartitionError("num_fragments must be positive")
    if strategy not in ("random", "bfs", "degree"):
        raise PartitionError(f"unknown base partition strategy {strategy!r}")
    rng = ensure_rng(seed)
    nodes = list(graph.nodes())
    rng.shuffle(nodes)
    blocks: List[Set[NodeId]] = [set() for _ in range(num_fragments)]

    if strategy == "random":
        for index, node in enumerate(nodes):
            blocks[index % num_fragments].add(node)
        return blocks

    if strategy == "degree":
        if use_index:
            from repro.index.snapshot import GraphIndex

            graph_index = GraphIndex.for_graph(graph)
            out_total = graph_index.out.total_degree
            in_total = graph_index.inc.total_degree
            node_id = graph_index.node_id

            def weight(node: NodeId) -> int:
                dense = node_id(node)
                return 1 + out_total[dense] + in_total[dense]

        else:

            def weight(node: NodeId) -> int:
                return 1 + graph.out_degree(node) + graph.in_degree(node)

        # LPT greedy: heaviest nodes first (the rng shuffle above breaks ties
        # between equal-degree nodes), each onto the lightest block so far.
        weighted = sorted(
            ((weight(node), node) for node in nodes), key=lambda pair: pair[0], reverse=True
        )
        loads = [0] * num_fragments
        for node_weight, node in weighted:
            lightest = min(range(num_fragments), key=lambda i: (loads[i], i))
            blocks[lightest].add(node)
            loads[lightest] += node_weight
        return blocks

    target = max(1, (len(nodes) + num_fragments - 1) // num_fragments)
    visited: Set[NodeId] = set()
    block_index = 0
    for start in nodes:
        if start in visited:
            continue
        # A deque popped from the left grows each region in true BFS order;
        # a list ``pop()`` here would grow depth-first, scattering a node's
        # near neighbourhood across block boundaries and inflating the
        # replication added by the d-hop extension.
        queue = deque((start,))
        while queue:
            node = queue.popleft()
            if node in visited:
                continue
            visited.add(node)
            while block_index < num_fragments - 1 and len(blocks[block_index]) >= target:
                block_index += 1
            blocks[block_index].add(node)
            for neighbor in graph.neighbors(node):
                if neighbor not in visited:
                    queue.append(neighbor)
    return blocks


def _neighborhood_space(graph: PropertyGraph, d: int, use_index: bool):
    """The node-set algebra the partition build runs in, compiled or dict-backed.

    Returns ``(within_hops, to_internal, to_public)``:

    * ``within_hops(node)`` — ``Nd(node)`` as a set in the internal space;
    * ``to_internal(nodes)`` — a fresh internal-space set from original ids;
    * ``to_public(internal)`` — back to original ids (for the final fragments).

    With *use_index* the internal space is **dense ids**: d-hop expansion is
    the frontier-array BFS of :class:`repro.index.NeighborhoodCSR` over the
    merged undirected CSR (one shared visited scratch across all calls,
    ``set(array)`` materialisation in C), and every subset/union/size the
    phases compute stays on small ints until the fragments are finalised.
    The dict fallback keeps original ids throughout; both spaces decode to
    identical partitions, which the equivalence suite asserts.
    """
    if use_index and graph.num_nodes:
        from repro.index.snapshot import GraphIndex
        from repro.utils.errors import NodeNotFoundError

        snapshot = GraphIndex.for_graph(graph)
        merged = snapshot.neighborhoods()
        scratch = bytearray(snapshot.num_nodes)
        dense_of = snapshot.nodes.encode
        value_of = snapshot.nodes.decode

        def within_hops(node: NodeId) -> Set[int]:
            node_id = dense_of(node)
            if node_id is None:
                # Same error the dict path's nodes_within_hops raises; the
                # snapshot is fresh, so this only fires for genuinely unknown
                # nodes (e.g. a stale partition naming removed nodes).
                raise NodeNotFoundError(node)
            return set(merged.nodes_within_hops_ids(node_id, d, visited=scratch))

        def to_internal(nodes) -> Set[int]:
            encoded = set(map(dense_of, nodes))
            if None in encoded:
                missing = next(node for node in nodes if dense_of(node) is None)
                raise NodeNotFoundError(missing)
            return encoded

        def to_public(internal) -> Set[NodeId]:
            return set(map(value_of, internal))

        return within_hops, to_internal, to_public
    return (lambda node: nodes_within_hops(graph, node, d)), set, (lambda internal: internal)


class DPar:
    """The d-hop preserving partitioner.

    Parameters
    ----------
    d:
        The hop radius to preserve; queries of radius ≤ d can then be answered
        locally per fragment.
    capacity_factor:
        The balance constant ``c``: fragments may grow to ``c · |V| / n``
        nodes.  The default 1.6 mirrors the paper's "small constant c < Cd".
    seed:
        Seed for the randomised base partition.
    strategy:
        Base partition strategy (``"random"``, ``"bfs"`` or ``"degree"``;
        see :func:`base_partition`).
    use_index:
        Resolve the per-node d-hop expansions (phases 1 and the incremental
        :meth:`extend`) through the merged undirected CSR of the compiled
        :class:`repro.index.GraphIndex`, and let the ``"degree"`` strategy
        read degrees from its degree arrays.  The dict fallback builds an
        identical partition; only the build time differs.
    """

    def __init__(
        self,
        d: int = 2,
        capacity_factor: float = 1.6,
        seed: SeedLike = None,
        strategy: str = "random",
        use_index: bool = True,
    ) -> None:
        if d < 0:
            raise PartitionError("d must be non-negative")
        if capacity_factor < 1.0:
            raise PartitionError("capacity_factor must be at least 1.0")
        self.d = d
        self.capacity_factor = capacity_factor
        self.seed = seed
        self.strategy = strategy
        self.use_index = use_index

    # ----------------------------------------------------------------- main

    def partition(self, graph: PropertyGraph, num_fragments: int) -> HopPreservingPartition:
        """Build a complete d-hop preserving partition of *graph*."""
        if num_fragments <= 0:
            raise PartitionError("num_fragments must be positive")
        with Timer() as timer:
            partition = self._partition_inner(graph, num_fragments)
        partition.elapsed = timer.elapsed
        return partition

    def _partition_inner(self, graph: PropertyGraph, num_fragments: int) -> HopPreservingPartition:
        rng = ensure_rng(self.seed)
        blocks = base_partition(
            graph, num_fragments, seed=rng, strategy=self.strategy,
            use_index=self.use_index,
        )
        # Phase 1 runs one d-hop BFS per graph node — the partitioner's hot
        # loop — and phases 2–4 are pure set algebra over the neighbourhoods.
        # With the index enabled, all of it happens on dense ids (the
        # "internal" space) and fragments are decoded once at the end.
        within_hops, to_internal, to_public = _neighborhood_space(
            graph, self.d, self.use_index
        )
        fragments = [
            Fragment(fragment_id=i, node_set=to_internal(block))
            for i, block in enumerate(blocks)
        ]
        capacity = max(
            self.capacity_factor * graph.num_nodes / num_fragments,
            max((len(block) for block in blocks), default=1.0) + 1.0,
        )

        # Nodes whose Nd already sits inside their home block are covered for
        # free; the rest are border nodes.  ``neighborhoods`` values live in
        # the internal space (its keys stay original ids).
        neighborhoods: Dict[NodeId, Set[NodeId]] = {}
        border: List[NodeId] = []
        home: Dict[NodeId, int] = {}
        for fragment, block in zip(fragments, blocks):
            for node in block:
                home[node] = fragment.fragment_id
                neighborhood = within_hops(node)
                neighborhoods[node] = neighborhood
                if neighborhood <= fragment.node_set:
                    fragment.owned_nodes.add(node)
                else:
                    border.append(node)
                    fragment.border_nodes.add(node)

        # Phase 2: pack border-node neighbourhoods onto fragments via MKP.
        items = []
        preferred = {}
        for node in border:
            weight = len(neighborhoods[node] - fragments[home[node]].node_set)
            items.append(KnapsackItem(item_id=node, weight=float(max(weight, 0)), value=1.0))
            preferred[node] = home[node]
        capacities = [max(capacity - fragment.size, 0.0) for fragment in fragments]
        assignment, unassigned = mkp_assign(items, capacities, preferred_bins=preferred)
        for node, fragment_index in assignment.items():
            fragment = fragments[fragment_index]
            fragment.node_set |= neighborhoods[node]
            fragment.owned_nodes.add(node)

        # Phase 3: completion — place every still-uncovered node where it
        # causes the least imbalance, ignoring the soft capacity if necessary
        # so the partition is always complete.
        for node in unassigned:
            neighborhood = neighborhoods[node]
            best_fragment = min(
                fragments,
                key=lambda fragment: (len(fragment.node_set | neighborhood), fragment.fragment_id),
            )
            best_fragment.node_set |= neighborhood
            best_fragment.owned_nodes.add(node)

        # Phase 4: ownership rebalancing.  Covering and completeness are now
        # guaranteed, but correlated neighbourhoods can leave one fragment
        # owning far more nodes than the others — and owned nodes are exactly
        # the focus candidates a worker has to verify, so ownership skew is
        # work skew.  Move surplus ownership to under-full fragments (carrying
        # the owned node's neighbourhood along so covering is preserved).
        self._rebalance_ownership(fragments, neighborhoods, rng)

        # Decode the replicated node sets back to original ids (a no-op on
        # the dict path); ownership and border sets carried original ids all
        # along, so the two paths produce identical partitions.
        for fragment in fragments:
            fragment.node_set = to_public(fragment.node_set)

        return HopPreservingPartition(d=self.d, fragments=fragments, source=graph)

    @staticmethod
    def _rebalance_ownership(fragments, neighborhoods, rng) -> None:
        total_owned = sum(len(fragment.owned_nodes) for fragment in fragments)
        if not fragments or total_owned == 0:
            return
        target = -(-total_owned // len(fragments))  # ceiling division
        surplus: List[NodeId] = []
        for fragment in fragments:
            excess = len(fragment.owned_nodes) - target
            if excess > 0:
                movable = sorted(fragment.owned_nodes, key=str)
                rng.shuffle(movable)
                for node in movable[:excess]:
                    fragment.owned_nodes.discard(node)
                    surplus.append(node)
        for node in surplus:
            receiver = min(fragments, key=lambda f: (len(f.owned_nodes), f.fragment_id))
            receiver.owned_nodes.add(node)
            receiver.node_set |= neighborhoods[node]

    # ----------------------------------------------------------- incremental

    def extend(self, partition: HopPreservingPartition, new_d: int) -> HopPreservingPartition:
        """Incrementally extend a partition to a larger hop radius.

        The paper notes (end of Section 5.2) that when a query arrives whose
        radius exceeds the partition's ``d``, each fragment extends the
        neighbourhoods of its owned nodes by the missing hops instead of
        re-partitioning from scratch.  The ownership assignment is kept; only
        the replicated context grows.
        """
        if new_d < partition.d:
            raise PartitionError("cannot shrink a partition; build a new one instead")
        if new_d == partition.d:
            return partition
        with Timer() as timer:
            within_hops, to_internal, to_public = _neighborhood_space(
                partition.source, new_d, self.use_index
            )
            fragments = []
            for old in partition.fragments:
                node_set = to_internal(old.node_set)
                for node in old.owned_nodes:
                    node_set |= within_hops(node)
                fragments.append(
                    Fragment(
                        fragment_id=old.fragment_id,
                        owned_nodes=set(old.owned_nodes),
                        node_set=to_public(node_set),
                        border_nodes=set(old.border_nodes),
                    )
                )
            extended = HopPreservingPartition(d=new_d, fragments=fragments, source=partition.source)
        extended.elapsed = timer.elapsed
        return extended
