"""Parallel quantified matching: MKP, d-hop preserving partition, PQMatch."""

from repro.parallel.coordinator import (
    PQMatch,
    penum_engine,
    pqmatch_engine,
    pqmatch_n_engine,
    pqmatch_s_engine,
)
from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    SimulatedCluster,
    ThreadedExecutor,
    make_executor,
)
from repro.parallel.mkp import KnapsackItem, greedy_mkp, mkp_assign
from repro.parallel.partition import DPar, Fragment, HopPreservingPartition, base_partition
from repro.parallel.worker import (
    FragmentPayload,
    FragmentTask,
    engine_from_spec,
    engine_to_spec,
    match_fragment,
    mqmatch_fragment,
)

__all__ = [
    "KnapsackItem",
    "greedy_mkp",
    "mkp_assign",
    "DPar",
    "Fragment",
    "HopPreservingPartition",
    "base_partition",
    "FragmentPayload",
    "FragmentTask",
    "engine_to_spec",
    "engine_from_spec",
    "match_fragment",
    "mqmatch_fragment",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "SimulatedCluster",
    "make_executor",
    "PQMatch",
    "pqmatch_engine",
    "pqmatch_s_engine",
    "pqmatch_n_engine",
    "penum_engine",
]
