"""Execution backends for the parallel coordinator.

The paper runs PQMatch on a cluster of up to 20 machines.  A reproduction
running inside a single container cannot observe 20-way wall-clock speedups,
so the coordinator supports several interchangeable backends:

* ``SerialExecutor``     — run fragment tasks one after another (baseline and
  the default for tests: fully deterministic).
* ``ThreadedExecutor``   — a :class:`concurrent.futures.ThreadPoolExecutor`;
  useful to overlap work, limited by the GIL for pure-Python matching.
* ``ProcessExecutor``    — a **persistent** :class:`concurrent.futures.ProcessPoolExecutor`
  fed binary :class:`~repro.parallel.worker.FragmentPayload` snapshots: each
  fragment is compiled once on the coordinator, shipped to the pool once as
  flat buffers when the pool is (re)created, and decoded at most once per
  worker into a per-worker cache — re-evaluating patterns on the same
  partition ships only the pattern.  Workers never call ``GraphIndex.build``.
* ``SimulatedCluster``   — runs the tasks serially but records the *work* each
  fragment performed (verifications + extensions + quantifier checks, counted
  by the engines themselves) and models the parallel makespan as the maximum
  per-worker work.  This is how the benchmarks reproduce the *shape* of the
  paper's Figures 8(b)–(e): the speedup curves depend only on how evenly DPar
  spreads the work, which the simulation measures exactly and noiselessly.

All backends consume :class:`repro.parallel.worker.FragmentTask` objects and
return their :class:`repro.matching.result.FragmentResult` lists.
"""

from __future__ import annotations

import pickle
import zlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.matching.result import FragmentResult
from repro.obs.metrics import get_registry
from repro.obs.trace import TraceContext, current_context, get_tracer, span
from repro.parallel.worker import (
    FragmentPayload,
    FragmentTask,
    engine_from_spec,
    engine_to_spec,
    match_fragment,
    options_key_from_spec,
)
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.utils.errors import PartitionError

__all__ = [
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "SimulatedCluster",
    "make_executor",
]

CacheKey = Tuple[int, int, int]  # (fragment_id, snapshot version, payload checksum)


def _run_task(task: FragmentTask) -> FragmentResult:
    """Module-level task runner so that process pools can pickle it."""
    return task.run()


# ----------------------------------------------------- pool worker machinery
#
# Module-level state *inside each pool worker process*: the payloads shipped
# by the pool initializer and the fragments decoded from them so far.  A
# fragment is decoded on the first task that touches it and reused (graph and
# compiled index both) by every later task of the same payload epoch.  When
# the coordinator applies a :class:`repro.delta.GraphDelta`, tasks arrive
# carrying a *delta chain* — (child key, parent key, pickled sub-delta,
# ownership churn) hops from a shipped payload to the current fragment state —
# and the worker replays the chain on its cached fragment: apply the batch,
# *refresh* the compiled index (never rebuild), adjust the owned set, re-key.

_WORKER_PAYLOADS: Dict[CacheKey, FragmentPayload] = {}
# cache key -> (materialised fragment graph, current owned-node set)
_WORKER_FRAGMENTS: Dict[CacheKey, Tuple[object, Set]] = {}

# One chain hop: (child cache key, parent cache key, pickled GraphDelta,
# owned nodes added, owned nodes removed).
ChainHop = Tuple[CacheKey, CacheKey, bytes, Tuple, Tuple]


def _pool_initializer(payloads: Sequence[FragmentPayload]) -> None:
    """Receive the fragment payloads once, at worker start-up."""
    _WORKER_PAYLOADS.clear()
    _WORKER_FRAGMENTS.clear()
    for payload in payloads:
        _WORKER_PAYLOADS[payload.cache_key] = payload


def _worker_fragment(cache_key: CacheKey, chain: Tuple[ChainHop, ...]) -> Tuple[object, Set]:
    """The cached (graph, owned) pair for *cache_key*, materialising on demand.

    A key with no cache entry is either a shipped payload (decode it) or the
    child of a chain hop (materialise the parent, apply the hop's sub-delta in
    place, refresh the cached compiled index, adjust ownership).  The parent
    entry is dropped — its graph object just mutated past that key.
    """
    entry = _WORKER_FRAGMENTS.get(cache_key)
    if entry is not None:
        return entry
    hop = next((h for h in chain if h[0] == cache_key), None)
    if hop is None:
        payload = _WORKER_PAYLOADS[cache_key]
        graph = payload.materialise()
        entry = (graph, set(payload.owned_nodes))
    else:
        from repro.delta.ops import apply_delta

        _child, parent_key, delta_bytes, owned_added, owned_removed = hop
        graph, owned = _worker_fragment(parent_key, chain)
        _WORKER_FRAGMENTS.pop(parent_key, None)
        delta = pickle.loads(delta_bytes)
        cached_index = graph.cached_index()
        refreshable = cached_index is not None and cached_index.version == graph.version
        apply_delta(graph, delta)
        if refreshable and delta.is_structural():
            cached_index.refreshed(delta)
        entry = (graph, (owned - set(owned_removed)) | set(owned_added))
    _WORKER_FRAGMENTS[cache_key] = entry
    return entry


def _pool_run_fragment(
    cache_key: CacheKey,
    pattern: QuantifiedGraphPattern,
    engine_spec: Tuple,
    chain: Tuple[ChainHop, ...] = (),
    trace_ctx: TraceContext = TraceContext("", None, False),
    fingerprint: Optional[str] = None,
    plan_binding: Optional[Dict] = None,
) -> Tuple[FragmentResult, int, Tuple[int, int, int]]:
    """Evaluate one pattern on one cached fragment inside a pool worker.

    Returns the fragment result, the number of ``GraphIndex.build`` calls the
    evaluation triggered in this worker — the coordinator aggregates the
    count and the regression tests assert it stays zero (decoding a snapshot
    must fully replace recompilation, and replaying a delta chain must
    *refresh* the decoded index, not recompile it) — and the worker
    plan-cache ``(hits, misses, compiles)`` deltas of this call.

    Tasks arrive with the pattern's *fingerprint* and plan binding, never a
    plan object: the worker compiles-or-reuses a :class:`CompiledPlan` from
    its own per-process cache, so each unique fingerprint compiles at most
    once per worker process.  A plan compile is pure pattern-shape work —
    it can never count as a snapshot rebuild.

    When the coordinator had tracing enabled, *trace_ctx* parents this
    worker's spans under the coordinator's ``pool.round`` span; the records
    ship back on ``FragmentResult.spans`` for the coordinator to ingest.
    """
    from repro.index.snapshot import build_call_count

    builds_before = build_call_count()
    with get_tracer().adopt(trace_ctx) as shipped_spans:
        graph, owned_nodes = _worker_fragment(cache_key, chain)
        engine = engine_from_spec(engine_spec)
        plan = None
        plan_stats = (0, 0, 0)
        if fingerprint is not None and engine_spec[0] == "qmatch":
            from repro.plan.cache import worker_plan_cache

            cache = worker_plan_cache()
            stats = cache.stats
            before = (stats.hits, stats.misses, stats.compiles)
            plan = cache.plan_for(
                graph, fingerprint, options_key_from_spec(engine_spec), pattern
            )
            plan_stats = (
                stats.hits - before[0],
                stats.misses - before[1],
                stats.compiles - before[2],
            )
        result = match_fragment(
            pattern,
            graph,
            owned_nodes,
            engine,
            cache_key[0],
            plan=plan,
            plan_binding=plan_binding,
        )
    if shipped_spans:
        result.spans = tuple(shipped_spans)
    return result, build_call_count() - builds_before, plan_stats


class SerialExecutor:
    """Run every fragment task in the calling thread, in order."""

    name = "serial"

    def run(self, tasks: Sequence[FragmentTask]) -> List[FragmentResult]:
        return [task.run() for task in tasks]

    def shutdown(self) -> None:
        """Nothing to release; present for executor-interface parity."""


class ThreadedExecutor:
    """Run fragment tasks on a thread pool (I/O-bound friendly, GIL-bound for CPU)."""

    name = "thread"

    def __init__(self, max_workers: int) -> None:
        if max_workers <= 0:
            raise PartitionError("max_workers must be positive")
        self.max_workers = max_workers

    def run(self, tasks: Sequence[FragmentTask]) -> List[FragmentResult]:
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(_run_task, tasks))

    def shutdown(self) -> None:
        """The pool is per-run; present for executor-interface parity."""


class _DeltaPayloadRef:
    """A payload reachable from a shipped one by replaying a delta chain.

    Created by :meth:`ProcessExecutor.apply_delta` instead of re-serialising
    the mutated fragment: it carries the new content key (derived by folding
    the pickled sub-delta into the parent's checksum, so the coordinator and
    any observer compute it identically without touching the graph) and a
    link to its parent.  Tasks keyed on it ship the chain; only a pool
    recreation flattens it back into a real :class:`FragmentPayload`.
    """

    __slots__ = ("fragment_id", "cache_key", "base", "delta_bytes", "owned_added", "owned_removed")

    def __init__(
        self,
        fragment_id: int,
        cache_key: CacheKey,
        base: Union[FragmentPayload, "_DeltaPayloadRef"],
        delta_bytes: bytes,
        owned_added: Tuple,
        owned_removed: Tuple,
    ) -> None:
        self.fragment_id = fragment_id
        self.cache_key = cache_key
        self.base = base
        self.delta_bytes = delta_bytes
        self.owned_added = owned_added
        self.owned_removed = owned_removed

    @property
    def root(self) -> FragmentPayload:
        """The shipped payload this chain hangs off."""
        base = self.base
        while isinstance(base, _DeltaPayloadRef):
            base = base.base
        return base

    def chain_hops(self) -> Tuple:
        """The hops root→self, in replay order, as worker-side ``ChainHop``s."""
        hops = []
        node: Union[FragmentPayload, _DeltaPayloadRef] = self
        while isinstance(node, _DeltaPayloadRef):
            hops.append(
                (node.cache_key, node.base.cache_key, node.delta_bytes,
                 node.owned_added, node.owned_removed)
            )
            node = node.base
        hops.reverse()
        return tuple(hops)


class ProcessExecutor:
    """Run fragment tasks on a persistent process pool (true CPU parallelism).

    The pool and two caches persist across :meth:`run` calls:

    * a coordinator-side payload cache — each fragment graph is serialised to
      a :class:`FragmentPayload` once per ``(fragment, graph version)``, not
      once per query (the cached source graph is pinned so an ``id()`` reuse
      can never alias a dead graph's entry);
    * the pool itself, keyed by the *payload epoch* (the sorted content keys
      of the shipped **root** fragments).  While the epoch is unchanged — the
      fig-8b/c sweep loop re-evaluating patterns on one partition — tasks
      ship only ``(cache key, pattern, engine options)``; fragment buffers
      cross the boundary once, at pool creation, and each worker decodes a
      fragment at most once.  A new epoch (new partition, a graph mutated
      outside the delta protocol) recreates the pool, which is exactly the
      re-ship the staleness story requires.

    Graph *deltas* are the exception that keeps the pool alive across
    mutations: :meth:`apply_delta` re-keys the affected payloads to
    :class:`_DeltaPayloadRef` chains, and subsequent tasks carry the chain so
    workers replay the batch on their cached fragments (apply + index
    refresh) instead of receiving — or worse, recompiling — new fragments.

    ``last_worker_rebuilds`` accumulates the workers' reported
    ``GraphIndex.build`` counts; it staying at zero — including across
    delta-applied mutations — is asserted by the regression tests and the
    fig-8b/c and incremental benchmarks.
    """

    name = "process"

    def __init__(self, max_workers: int) -> None:
        if max_workers <= 0:
            raise PartitionError("max_workers must be positive")
        self.max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_epoch: Optional[Tuple[CacheKey, ...]] = None
        # (fragment_id, id(graph), graph version) -> (pinned graph, payload)
        self._payloads: Dict[
            Tuple[int, int, int], Tuple[object, Union[FragmentPayload, _DeltaPayloadRef]]
        ] = {}
        self.last_worker_rebuilds = 0
        # Fragments re-keyed through apply_delta() while their pool stayed
        # alive; the incremental benchmark reads this to prove deltas shipped
        # instead of fragments.
        self.deltas_shipped = 0
        # Accumulated worker plan-cache activity, reported per task: hot
        # fingerprints must hit (compiles bounded by unique fingerprints per
        # worker process), and a plan compile is never a snapshot rebuild.
        self.last_worker_plan_hits = 0
        self.last_worker_plan_misses = 0
        self.last_worker_plan_compiles = 0

    # ------------------------------------------------------------- payloads

    def _payload_for(self, task: FragmentTask) -> Union[FragmentPayload, _DeltaPayloadRef]:
        source = task.fragment_graph
        key = (task.fragment_id, id(source), source.version)
        entry = self._payloads.get(key)
        if entry is not None and entry[0] is source:
            return entry[1]
        payload = FragmentPayload.from_fragment(
            task.fragment_id, source, task.owned_nodes
        )
        self._payloads[key] = (source, payload)
        return payload

    # ---------------------------------------------------------------- deltas

    def apply_delta(self, updates: Sequence) -> int:
        """Re-key cached fragment payloads across an applied graph batch.

        *updates* are the :class:`repro.delta.FragmentUpdate` records of
        :func:`repro.delta.apply_delta_to_partition` — call it (via
        :meth:`repro.parallel.coordinator.PQMatch.apply_delta`) after the
        batch mutated the fragment graphs.  For every fragment whose payload
        was already serialised, the mutated state is addressed by a
        :class:`_DeltaPayloadRef` whose key is derived from the parent
        checksum and the pickled sub-delta; the next :meth:`run` ships the
        sub-delta with the task and the live pool replays it — no fragment
        re-serialisation, no pool recreation, no worker rebuild.

        Fragments never shipped are simply forgotten; they serialise fresh
        (post-delta) on their next use.  Returns the number of re-keyed
        payloads.
        """
        rekeyed = 0
        for update in updates:
            graph = update.graph
            old_key = (update.fragment_id, id(graph), update.old_version)
            entry = self._payloads.get(old_key)
            if entry is None or entry[0] is not graph:
                continue
            del self._payloads[old_key]
            if not update.refresh_ok:
                # A worker replaying this sub-delta could not refresh its
                # decoded index incrementally (e.g. node deletions) — forget
                # the payload so the fragment re-ships fresh instead of
                # making a pool worker rebuild.
                continue
            base = entry[1]
            delta_bytes = pickle.dumps(update.delta, protocol=pickle.HIGHEST_PROTOCOL)
            checksum = zlib.crc32(delta_bytes, base.cache_key[2]) & 0xFFFFFFFF
            ref = _DeltaPayloadRef(
                fragment_id=update.fragment_id,
                cache_key=(update.fragment_id, graph.version, checksum),
                base=base,
                delta_bytes=delta_bytes,
                owned_added=update.owned_added,
                owned_removed=update.owned_removed,
            )
            self._payloads[(update.fragment_id, id(graph), graph.version)] = (graph, ref)
            rekeyed += 1
        self.deltas_shipped += rekeyed
        return rekeyed

    # ------------------------------------------------------------------ run

    @property
    def pool_epoch(self) -> Optional[Tuple[CacheKey, ...]]:
        """The live pool's payload-content epoch (``None`` while cold)."""
        return self._pool_epoch

    def run(self, tasks: Sequence[FragmentTask]) -> List[FragmentResult]:
        if not tasks:
            return []
        with span("pool.round", backend=self.name, tasks=len(tasks)):
            results = self._run_round(tasks)
        registry = get_registry()
        if registry:
            registry.counter("pool.rounds").inc()
            registry.counter("pool.tasks").inc(len(tasks))
            registry.gauge("pool.workers").set(self.max_workers)
            registry.gauge("pool.worker_rebuilds").set(self.last_worker_rebuilds)
            registry.gauge("pool.deltas_shipped").set(self.deltas_shipped)
            registry.gauge("pool.worker_plan_hits").set(self.last_worker_plan_hits)
            registry.gauge("pool.worker_plan_compiles").set(
                self.last_worker_plan_compiles
            )
        return results

    def _run_round(self, tasks: Sequence[FragmentTask]) -> List[FragmentResult]:
        payloads = [self._payload_for(task) for task in tasks]
        # The epoch is the *set* of shipped fragment contents: a batched run
        # (many patterns × the same fragments, as the serving layer submits)
        # must share the pool — and the shipped payloads — with single-pattern
        # runs over the same partition, so duplicate keys are collapsed.
        # Delta-chained payloads resolve to their shipped *root*: the pool
        # that holds the root fragments can serve every state reachable from
        # them by replaying chains, so a mutation never recreates it.
        epoch = tuple(sorted(
            {(p.root if isinstance(p, _DeltaPayloadRef) else p).cache_key for p in payloads}
        ))
        if self._pool is None or epoch != self._pool_epoch:
            # Cold pool (or a changed fragment set): flatten chained payloads
            # into real ones first — a fresh pool should ship current bytes,
            # not history to replay.
            for position, (payload, task) in enumerate(zip(payloads, tasks)):
                if isinstance(payload, _DeltaPayloadRef):
                    source = task.fragment_graph
                    key = (task.fragment_id, id(source), source.version)
                    entry = self._payloads.get(key)
                    if not (entry is not None and entry[0] is source
                            and isinstance(entry[1], FragmentPayload)):
                        entry = (
                            source,
                            FragmentPayload.from_fragment(
                                task.fragment_id, source, task.owned_nodes
                            ),
                        )
                        self._payloads[key] = entry
                    payloads[position] = entry[1]
            epoch = tuple(sorted({payload.cache_key for payload in payloads}))
            self.shutdown()
            live = set(epoch)
            self._payloads = {
                key: entry
                for key, entry in self._payloads.items()
                if not isinstance(entry[1], _DeltaPayloadRef)
                and entry[1].cache_key in live
            }
            unique_payloads = list(
                {payload.cache_key: payload for payload in payloads}.values()
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_pool_initializer,
                initargs=(unique_payloads,),
            )
            self._pool_epoch = epoch
            registry = get_registry()
            if registry:
                registry.counter("pool.recreations").inc()
        trace_ctx = current_context()
        futures = [
            self._pool.submit(
                _pool_run_fragment,
                payload.cache_key,
                task.pattern,
                engine_to_spec(task.engine),
                payload.chain_hops() if isinstance(payload, _DeltaPayloadRef) else (),
                trace_ctx,
                task.fingerprint,
                task.plan_binding,
            )
            for payload, task in zip(payloads, tasks)
        ]
        results: List[FragmentResult] = []
        tracer = get_tracer()
        for future in futures:
            result, rebuilds, plan_stats = future.result()
            self.last_worker_rebuilds += rebuilds
            self.last_worker_plan_hits += plan_stats[0]
            self.last_worker_plan_misses += plan_stats[1]
            self.last_worker_plan_compiles += plan_stats[2]
            if result.spans:
                tracer.ingest(result.spans)
            results.append(result)
        return results

    # ------------------------------------------------------------ lifecycle

    def shutdown(self) -> None:
        """Terminate the worker pool (the payload cache survives)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_epoch = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


@dataclass
class SimulatedCluster:
    """Deterministic work-based model of an ``n``-worker cluster.

    Each fragment task is executed (serially, by the real matching code); the
    work it reports is attributed to the worker hosting that fragment.  The
    modelled parallel cost of the run is the *makespan* — the largest total
    work assigned to any worker — which the coordinator exposes alongside the
    true total work so that benchmarks can report speedup = total / makespan.
    """

    num_workers: int
    name: str = "simulated"

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise PartitionError("num_workers must be positive")

    def run(self, tasks: Sequence[FragmentTask]) -> List[FragmentResult]:
        return [task.run() for task in tasks]

    def shutdown(self) -> None:
        """Nothing to release; present for executor-interface parity."""


def make_executor(kind: str, num_workers: int):
    """Factory used by the coordinator: ``serial`` / ``thread`` / ``process`` / ``simulated``."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadedExecutor(num_workers)
    if kind == "process":
        return ProcessExecutor(num_workers)
    if kind == "simulated":
        return SimulatedCluster(num_workers)
    raise PartitionError(f"unknown executor kind {kind!r}")
