"""Execution backends for the parallel coordinator.

The paper runs PQMatch on a cluster of up to 20 machines.  A reproduction
running inside a single container cannot observe 20-way wall-clock speedups,
so the coordinator supports several interchangeable backends:

* ``SerialExecutor``     — run fragment tasks one after another (baseline and
  the default for tests: fully deterministic).
* ``ThreadedExecutor``   — a :class:`concurrent.futures.ThreadPoolExecutor`;
  useful to overlap work, limited by the GIL for pure-Python matching.
* ``ProcessExecutor``    — a **persistent** :class:`concurrent.futures.ProcessPoolExecutor`
  fed binary :class:`~repro.parallel.worker.FragmentPayload` snapshots: each
  fragment is compiled once on the coordinator, shipped to the pool once as
  flat buffers when the pool is (re)created, and decoded at most once per
  worker into a per-worker cache — re-evaluating patterns on the same
  partition ships only the pattern.  Workers never call ``GraphIndex.build``.
* ``SimulatedCluster``   — runs the tasks serially but records the *work* each
  fragment performed (verifications + extensions + quantifier checks, counted
  by the engines themselves) and models the parallel makespan as the maximum
  per-worker work.  This is how the benchmarks reproduce the *shape* of the
  paper's Figures 8(b)–(e): the speedup curves depend only on how evenly DPar
  spreads the work, which the simulation measures exactly and noiselessly.

All backends consume :class:`repro.parallel.worker.FragmentTask` objects and
return their :class:`repro.matching.result.FragmentResult` lists.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.matching.result import FragmentResult
from repro.parallel.worker import (
    FragmentPayload,
    FragmentTask,
    engine_from_spec,
    engine_to_spec,
    match_fragment,
)
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.utils.errors import PartitionError

__all__ = [
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "SimulatedCluster",
    "make_executor",
]

CacheKey = Tuple[int, int, int]  # (fragment_id, snapshot version, payload checksum)


def _run_task(task: FragmentTask) -> FragmentResult:
    """Module-level task runner so that process pools can pickle it."""
    return task.run()


# ----------------------------------------------------- pool worker machinery
#
# Module-level state *inside each pool worker process*: the payloads shipped
# by the pool initializer and the fragments decoded from them so far.  A
# fragment is decoded on the first task that touches it and reused (graph and
# compiled index both) by every later task of the same payload epoch.

_WORKER_PAYLOADS: Dict[CacheKey, FragmentPayload] = {}
_WORKER_FRAGMENTS: Dict[CacheKey, object] = {}


def _pool_initializer(payloads: Sequence[FragmentPayload]) -> None:
    """Receive the fragment payloads once, at worker start-up."""
    _WORKER_PAYLOADS.clear()
    _WORKER_FRAGMENTS.clear()
    for payload in payloads:
        _WORKER_PAYLOADS[payload.cache_key] = payload


def _pool_run_fragment(
    cache_key: CacheKey,
    pattern: QuantifiedGraphPattern,
    engine_spec: Tuple,
) -> Tuple[FragmentResult, int]:
    """Evaluate one pattern on one cached fragment inside a pool worker.

    Returns the fragment result plus the number of ``GraphIndex.build`` calls
    the evaluation triggered in this worker — the coordinator aggregates the
    count and the regression tests assert it stays zero (decoding a snapshot
    must fully replace recompilation).
    """
    from repro.index.snapshot import build_call_count

    builds_before = build_call_count()
    graph = _WORKER_FRAGMENTS.get(cache_key)
    payload = _WORKER_PAYLOADS[cache_key]
    if graph is None:
        graph = payload.materialise()
        _WORKER_FRAGMENTS[cache_key] = graph
    engine = engine_from_spec(engine_spec)
    result = match_fragment(
        pattern, graph, payload.owned_nodes, engine, payload.fragment_id
    )
    return result, build_call_count() - builds_before


class SerialExecutor:
    """Run every fragment task in the calling thread, in order."""

    name = "serial"

    def run(self, tasks: Sequence[FragmentTask]) -> List[FragmentResult]:
        return [task.run() for task in tasks]

    def shutdown(self) -> None:
        """Nothing to release; present for executor-interface parity."""


class ThreadedExecutor:
    """Run fragment tasks on a thread pool (I/O-bound friendly, GIL-bound for CPU)."""

    name = "thread"

    def __init__(self, max_workers: int) -> None:
        if max_workers <= 0:
            raise PartitionError("max_workers must be positive")
        self.max_workers = max_workers

    def run(self, tasks: Sequence[FragmentTask]) -> List[FragmentResult]:
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(_run_task, tasks))

    def shutdown(self) -> None:
        """The pool is per-run; present for executor-interface parity."""


class ProcessExecutor:
    """Run fragment tasks on a persistent process pool (true CPU parallelism).

    The pool and two caches persist across :meth:`run` calls:

    * a coordinator-side payload cache — each fragment graph is serialised to
      a :class:`FragmentPayload` once per ``(fragment, graph version)``, not
      once per query (the cached source graph is pinned so an ``id()`` reuse
      can never alias a dead graph's entry);
    * the pool itself, keyed by the *payload epoch* (the sorted content keys
      of the shipped fragments).  While the epoch is unchanged — the fig-8b/c
      sweep loop re-evaluating patterns on one partition — tasks ship only
      ``(cache key, pattern, engine options)``; fragment buffers cross the
      boundary once, at pool creation, and each worker decodes a fragment at
      most once.  A new epoch (new partition, mutated graph) recreates the
      pool, which is exactly the re-ship the staleness story requires.

    ``last_worker_rebuilds`` accumulates the workers' reported
    ``GraphIndex.build`` counts; it staying at zero is asserted by the
    regression tests and the fig-8b/c benchmark.
    """

    name = "process"

    def __init__(self, max_workers: int) -> None:
        if max_workers <= 0:
            raise PartitionError("max_workers must be positive")
        self.max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_epoch: Optional[Tuple[CacheKey, ...]] = None
        # (fragment_id, id(graph), graph version) -> (pinned graph, payload)
        self._payloads: Dict[Tuple[int, int, int], Tuple[object, FragmentPayload]] = {}
        self.last_worker_rebuilds = 0

    # ------------------------------------------------------------- payloads

    def _payload_for(self, task: FragmentTask) -> FragmentPayload:
        source = task.fragment_graph
        key = (task.fragment_id, id(source), source.version)
        entry = self._payloads.get(key)
        if entry is not None and entry[0] is source:
            return entry[1]
        payload = FragmentPayload.from_fragment(
            task.fragment_id, source, task.owned_nodes
        )
        self._payloads[key] = (source, payload)
        return payload

    # ------------------------------------------------------------------ run

    def run(self, tasks: Sequence[FragmentTask]) -> List[FragmentResult]:
        if not tasks:
            return []
        payloads = [self._payload_for(task) for task in tasks]
        # The epoch is the *set* of shipped fragment contents: a batched run
        # (many patterns × the same fragments, as the serving layer submits)
        # must share the pool — and the shipped payloads — with single-pattern
        # runs over the same partition, so duplicate keys are collapsed.
        epoch = tuple(sorted(set(payload.cache_key for payload in payloads)))
        if self._pool is None or epoch != self._pool_epoch:
            self.shutdown()
            live = set(epoch)
            self._payloads = {
                key: entry
                for key, entry in self._payloads.items()
                if entry[1].cache_key in live
            }
            unique_payloads = list(
                {payload.cache_key: payload for payload in payloads}.values()
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_pool_initializer,
                initargs=(unique_payloads,),
            )
            self._pool_epoch = epoch
        futures = [
            self._pool.submit(
                _pool_run_fragment,
                payload.cache_key,
                task.pattern,
                engine_to_spec(task.engine),
            )
            for payload, task in zip(payloads, tasks)
        ]
        results: List[FragmentResult] = []
        for future in futures:
            result, rebuilds = future.result()
            self.last_worker_rebuilds += rebuilds
            results.append(result)
        return results

    # ------------------------------------------------------------ lifecycle

    def shutdown(self) -> None:
        """Terminate the worker pool (the payload cache survives)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_epoch = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


@dataclass
class SimulatedCluster:
    """Deterministic work-based model of an ``n``-worker cluster.

    Each fragment task is executed (serially, by the real matching code); the
    work it reports is attributed to the worker hosting that fragment.  The
    modelled parallel cost of the run is the *makespan* — the largest total
    work assigned to any worker — which the coordinator exposes alongside the
    true total work so that benchmarks can report speedup = total / makespan.
    """

    num_workers: int
    name: str = "simulated"

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise PartitionError("num_workers must be positive")

    def run(self, tasks: Sequence[FragmentTask]) -> List[FragmentResult]:
        return [task.run() for task in tasks]

    def shutdown(self) -> None:
        """Nothing to release; present for executor-interface parity."""


def make_executor(kind: str, num_workers: int):
    """Factory used by the coordinator: ``serial`` / ``thread`` / ``process`` / ``simulated``."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadedExecutor(num_workers)
    if kind == "process":
        return ProcessExecutor(num_workers)
    if kind == "simulated":
        return SimulatedCluster(num_workers)
    raise PartitionError(f"unknown executor kind {kind!r}")
