"""Execution backends for the parallel coordinator.

The paper runs PQMatch on a cluster of up to 20 machines.  A reproduction
running inside a single container cannot observe 20-way wall-clock speedups,
so the coordinator supports several interchangeable backends:

* ``SerialExecutor``     — run fragment tasks one after another (baseline and
  the default for tests: fully deterministic).
* ``ThreadedExecutor``   — a :class:`concurrent.futures.ThreadPoolExecutor`;
  useful to overlap work, limited by the GIL for pure-Python matching.
* ``ProcessExecutor``    — a :class:`concurrent.futures.ProcessPoolExecutor`;
  real CPU parallelism at the cost of pickling the fragment graphs.
* ``SimulatedCluster``   — runs the tasks serially but records the *work* each
  fragment performed (verifications + extensions + quantifier checks, counted
  by the engines themselves) and models the parallel makespan as the maximum
  per-worker work.  This is how the benchmarks reproduce the *shape* of the
  paper's Figures 8(b)–(e): the speedup curves depend only on how evenly DPar
  spreads the work, which the simulation measures exactly and noiselessly.

All backends consume :class:`repro.parallel.worker.FragmentTask` objects and
return their :class:`repro.matching.result.FragmentResult` lists.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Sequence

from repro.matching.result import FragmentResult
from repro.parallel.worker import FragmentTask
from repro.utils.errors import PartitionError

__all__ = [
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "SimulatedCluster",
    "make_executor",
]


def _run_task(task: FragmentTask) -> FragmentResult:
    """Module-level task runner so that process pools can pickle it."""
    return task.run()


class SerialExecutor:
    """Run every fragment task in the calling thread, in order."""

    name = "serial"

    def run(self, tasks: Sequence[FragmentTask]) -> List[FragmentResult]:
        return [task.run() for task in tasks]


class ThreadedExecutor:
    """Run fragment tasks on a thread pool (I/O-bound friendly, GIL-bound for CPU)."""

    name = "thread"

    def __init__(self, max_workers: int) -> None:
        if max_workers <= 0:
            raise PartitionError("max_workers must be positive")
        self.max_workers = max_workers

    def run(self, tasks: Sequence[FragmentTask]) -> List[FragmentResult]:
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(_run_task, tasks))


class ProcessExecutor:
    """Run fragment tasks on a process pool (true CPU parallelism)."""

    name = "process"

    def __init__(self, max_workers: int) -> None:
        if max_workers <= 0:
            raise PartitionError("max_workers must be positive")
        self.max_workers = max_workers

    def run(self, tasks: Sequence[FragmentTask]) -> List[FragmentResult]:
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(_run_task, tasks))


@dataclass
class SimulatedCluster:
    """Deterministic work-based model of an ``n``-worker cluster.

    Each fragment task is executed (serially, by the real matching code); the
    work it reports is attributed to the worker hosting that fragment.  The
    modelled parallel cost of the run is the *makespan* — the largest total
    work assigned to any worker — which the coordinator exposes alongside the
    true total work so that benchmarks can report speedup = total / makespan.
    """

    num_workers: int
    name: str = "simulated"

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise PartitionError("num_workers must be positive")

    def run(self, tasks: Sequence[FragmentTask]) -> List[FragmentResult]:
        return [task.run() for task in tasks]


def make_executor(kind: str, num_workers: int):
    """Factory used by the coordinator: ``serial`` / ``thread`` / ``process`` / ``simulated``."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadedExecutor(num_workers)
    if kind == "process":
        return ProcessExecutor(num_workers)
    if kind == "simulated":
        return SimulatedCluster(num_workers)
    raise PartitionError(f"unknown executor kind {kind!r}")
