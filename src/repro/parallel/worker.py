"""Per-fragment matching work (the paper's ``mQMatch``).

A worker receives one fragment of a d-hop preserving partition and the QGP,
and evaluates the pattern *locally*: because the fragment contains the full
d-hop neighbourhood of every node it owns, and the pattern radius is at most
d, a focus candidate owned by the fragment matches in the fragment if and only
if it matches in the whole graph (paper Lemma 9(1)).  Restricting the focus
candidates to the owned nodes also guarantees that no answer is reported by
two workers, so the coordinator can simply union the partial answers.

``mqmatch_fragment`` additionally supports splitting the owned focus
candidates into ``threads`` chunks that are evaluated independently — the
intra-fragment parallelism of the paper's mQMatch.  With the default
``thread_pool=None`` the chunks run sequentially but are still accounted
separately, which is what the simulated cluster uses to model intra-fragment
speedups deterministically.
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.graph.digraph import PropertyGraph
from repro.matching.qmatch import QMatch
from repro.matching.result import FragmentResult, MatchResult
from repro.obs.trace import span
from repro.parallel.partition import Fragment, HopPreservingPartition
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.utils.counters import WorkCounter
from repro.utils.timing import Timer

__all__ = [
    "match_fragment",
    "mqmatch_fragment",
    "FragmentTask",
    "FragmentPayload",
    "engine_to_spec",
    "engine_from_spec",
    "options_key_from_spec",
]

NodeId = Hashable

# A picklable engine description: ("qmatch", use_incremental, options, name)
# for the standard engine, ("opaque", engine) as the generic fallback.
EngineSpec = Tuple


def engine_to_spec(engine: object) -> EngineSpec:
    """A slim picklable spec for *engine*, reconstructable worker-side.

    The standard :class:`~repro.matching.qmatch.QMatch` is fully described by
    its construction options, so only those cross the process boundary (the
    ``("qmatch", ...)`` spec); any other engine object falls back to being
    pickled whole (``("opaque", engine)``).
    """
    if type(engine) is QMatch:
        return ("qmatch", engine.use_incremental, engine.options, engine.name)
    return ("opaque", engine)


def engine_from_spec(spec: EngineSpec) -> object:
    """Rebuild the engine described by :func:`engine_to_spec`."""
    if spec[0] == "qmatch":
        _, use_incremental, options, name = spec
        return QMatch(use_incremental=use_incremental, options=options, name=name)
    return spec[1]


def options_key_from_spec(spec: EngineSpec) -> Tuple:
    """The plan/result-cache engine-options key for an engine spec.

    The single source of truth for what "same engine options" means: QMatch
    engines key on their evaluation options (the display name is cosmetic),
    opaque engines on their type.  Both the service's caches and the worker
    plan cache key plans with this, so a plan can never be reused across an
    options change.
    """
    if spec[0] == "qmatch":
        return ("qmatch", spec[1], spec[2])
    engine = spec[1]
    return ("opaque", type(engine).__module__, type(engine).__qualname__)


def options_key_text(options_key: Tuple) -> str:
    """A stable text encoding of an engine-options key for shared stores.

    In-process caches key on the tuple itself; the cross-process shared
    result cache (:mod:`repro.serve.shared_cache`) needs a *textual* key two
    processes agree on.  ``repr`` of the key is deterministic — it is built
    from literals, frozen dataclasses (``DMatchOptions``) and qualified type
    names, none of which embed object identities — so it is that encoding.
    """
    return repr(options_key)


class FragmentTask:
    """A picklable unit of work: evaluate *pattern* on one fragment graph.

    Process-pool executors need the task to be self-contained, so the fragment
    graph is materialised before the task is shipped.  Pickling replaces the
    engine instance with its :func:`engine_to_spec` description — workers
    reconstruct the engine from options instead of unpickling engine state.

    Compiled plans ship **by reference only**: the pickled form carries the
    pattern's ``fingerprint`` and the ``plan_binding`` (pattern node →
    canonical position), never the :class:`repro.plan.CompiledPlan` itself —
    its closures and resolved row stores are process-local.  Workers
    compile-or-reuse from their per-process plan cache; in-process executors
    use the coordinator's ``plan`` object directly.
    """

    def __init__(
        self,
        fragment_id: int,
        fragment_graph: PropertyGraph,
        owned_nodes: Set[NodeId],
        pattern: QuantifiedGraphPattern,
        engine: QMatch,
        fingerprint: Optional[str] = None,
        plan=None,
        plan_binding: Optional[Dict[NodeId, int]] = None,
    ) -> None:
        self.fragment_id = fragment_id
        self.fragment_graph = fragment_graph
        self.owned_nodes = owned_nodes
        self.pattern = pattern
        self.engine = engine
        self.fingerprint = fingerprint
        self.plan = plan
        self.plan_binding = plan_binding

    def run(self) -> FragmentResult:
        return match_fragment(
            self.pattern,
            self.fragment_graph,
            self.owned_nodes,
            self.engine,
            self.fragment_id,
            plan=self.plan,
            plan_binding=self.plan_binding,
        )

    def __getstate__(self) -> Dict[str, object]:
        return {
            "fragment_id": self.fragment_id,
            "fragment_graph": self.fragment_graph,
            "owned_nodes": self.owned_nodes,
            "pattern": self.pattern,
            "engine_spec": engine_to_spec(self.engine),
            "fingerprint": self.fingerprint,
            "plan_binding": self.plan_binding,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.engine = engine_from_spec(state.pop("engine_spec"))
        # The compiled plan never crosses the boundary; the receiving process
        # recompiles-or-reuses from (fingerprint, plan_binding) if it wants one.
        self.plan = None
        self.__dict__.update(state)


class FragmentPayload:
    """The flat-buffer wire form of one fragment: snapshot bytes + ownership.

    This is what actually crosses a process boundary.  Instead of pickling the
    fragment's nested-dict :class:`PropertyGraph` (and recompiling a
    :class:`~repro.index.GraphIndex` inside every worker), the fragment is
    compiled once on the coordinator and shipped as the binary snapshot of
    :mod:`repro.index.serialize`; :meth:`materialise` rebuilds both the graph
    *and* its fresh cached index from those buffers in one decode.

    ``cache_key`` — ``(fragment_id, snapshot version, payload checksum)`` —
    identifies the fragment *content*, so worker-side caches keyed on it ship
    and decode each fragment exactly once per worker and a re-partitioned (or
    mutated) fragment can never be answered from a stale cache entry.
    """

    __slots__ = ("fragment_id", "owned_nodes", "snapshot_bytes", "attrs", "cache_key")

    def __init__(
        self,
        fragment_id: int,
        owned_nodes: Set[NodeId],
        snapshot_bytes: bytes,
        attrs: Dict[NodeId, Dict[str, object]],
        cache_key: Tuple[int, int, int],
    ) -> None:
        self.fragment_id = fragment_id
        self.owned_nodes = owned_nodes
        self.snapshot_bytes = snapshot_bytes
        self.attrs = attrs
        self.cache_key = cache_key

    @classmethod
    def from_fragment(
        cls,
        fragment_id: int,
        fragment_graph: PropertyGraph,
        owned_nodes: Set[NodeId],
    ) -> "FragmentPayload":
        """Compile (or reuse) the fragment's snapshot and freeze it to bytes.

        Node attributes ride along separately — the snapshot only mirrors
        graph structure — so the worker-side graph is attribute-identical to
        the coordinator's fragment.  The snapshot carries a full compiled-rows
        manifest (``include_compiled_rows=True``): decoding it materialises
        every per-label enumeration row store eagerly, so workers never pay a
        lazy row-store derivation inside their first query.
        """
        from repro.index.serialize import snapshot_checksum, to_bytes
        from repro.index.snapshot import GraphIndex

        index = GraphIndex.for_graph(fragment_graph)
        snapshot_bytes = to_bytes(index, include_compiled_rows=True)
        attrs = {}
        for node in fragment_graph.nodes():
            node_attrs = fragment_graph.node_attrs(node)
            if node_attrs:
                attrs[node] = dict(node_attrs)
        cache_key = (fragment_id, index.version, snapshot_checksum(snapshot_bytes))
        return cls(
            fragment_id=fragment_id,
            owned_nodes=set(owned_nodes),
            snapshot_bytes=snapshot_bytes,
            attrs=attrs,
            cache_key=cache_key,
        )

    def materialise(self) -> PropertyGraph:
        """Decode the snapshot into a graph with its compiled index attached.

        ``GraphIndex.for_graph`` on the returned graph is a cache hit — the
        decoded index carries the same version stamp the rebuilt graph starts
        from — so matching on it never triggers ``GraphIndex.build``.
        """
        from repro.index.serialize import from_bytes

        index = from_bytes(self.snapshot_bytes)
        graph = index.graph
        for node, node_attrs in self.attrs.items():
            for key, value in node_attrs.items():
                graph.set_node_attr(node, key, value)
        return graph

    def run(self, pattern: QuantifiedGraphPattern, engine: Optional[QMatch] = None) -> FragmentResult:
        """Materialise and evaluate — the single-shot (uncached) path."""
        return match_fragment(
            pattern, self.materialise(), self.owned_nodes, engine, self.fragment_id
        )


def _restrict_answer_to_owned(result: MatchResult, owned_nodes: Set[NodeId]) -> Set[NodeId]:
    return {node for node in result.answer if node in owned_nodes}


def match_fragment(
    pattern: QuantifiedGraphPattern,
    fragment_graph: PropertyGraph,
    owned_nodes: Set[NodeId],
    engine: Optional[QMatch] = None,
    fragment_id: int = 0,
    plan=None,
    plan_binding: Optional[Dict[NodeId, int]] = None,
) -> FragmentResult:
    """Evaluate *pattern* on one fragment, verifying only owned focus candidates.

    Restricting the verified focus candidates to the fragment's owned nodes is
    what makes the union of per-fragment answers exact *and* keeps the total
    work across fragments equal to the sequential work: every candidate is
    verified by exactly one worker (its owner), inside the fragment that holds
    its whole d-hop neighbourhood.

    A compiled ``plan`` is only handed to the standard :class:`QMatch` engine:
    opaque engines would reject the keyword and land in the ``TypeError``
    fallback below, silently dropping the focus restriction with it.
    """
    engine = engine or QMatch()
    with span(
        "worker.fragment", fragment=fragment_id, owned=len(owned_nodes)
    ), Timer() as timer:
        try:
            if plan is not None and isinstance(engine, QMatch):
                result = engine.evaluate(
                    pattern,
                    fragment_graph,
                    focus_restriction=owned_nodes,
                    plan=plan,
                    plan_binding=plan_binding,
                )
            else:
                result = engine.evaluate(pattern, fragment_graph, focus_restriction=owned_nodes)
        except TypeError:
            # Engines without per-candidate decomposition (e.g. the Enum
            # baseline) evaluate the whole fragment and filter afterwards.
            result = engine.evaluate(pattern, fragment_graph)
        answer = _restrict_answer_to_owned(result, owned_nodes)
    fragment_result = FragmentResult(
        fragment_id=fragment_id,
        answer=answer,
        counter=result.counter,
        elapsed=timer.elapsed,
    )
    return fragment_result


def _chunk(sequence: Sequence[NodeId], chunks: int) -> List[List[NodeId]]:
    """Split *sequence* into at most *chunks* contiguous, near-equal chunks."""
    chunks = max(1, chunks)
    items = list(sequence)
    if not items:
        return [[]]
    size = (len(items) + chunks - 1) // chunks
    return [items[i : i + size] for i in range(0, len(items), size)]


def mqmatch_fragment(
    pattern: QuantifiedGraphPattern,
    fragment_graph: PropertyGraph,
    owned_nodes: Set[NodeId],
    engine: Optional[QMatch] = None,
    fragment_id: int = 0,
    threads: int = 1,
    thread_pool: Optional[Executor] = None,
    plan=None,
    plan_binding: Optional[Dict[NodeId, int]] = None,
) -> FragmentResult:
    """mQMatch: intra-fragment parallel evaluation over owned focus candidates.

    The owned focus candidates are split into *threads* chunks; each chunk is
    evaluated by a full QMatch run restricted (via the candidate index) to its
    chunk of candidates, and the partial answers are unioned.  When a
    ``thread_pool`` is supplied the chunks run concurrently; otherwise they run
    sequentially (useful for deterministic work accounting).
    """
    engine = engine or QMatch()
    if threads <= 1:
        return match_fragment(
            pattern,
            fragment_graph,
            owned_nodes,
            engine,
            fragment_id,
            plan=plan,
            plan_binding=plan_binding,
        )

    focus_label = pattern.node_label(pattern.focus)
    owned_candidates = [
        node for node in owned_nodes
        if fragment_graph.has_node(node) and fragment_graph.node_label(node) == focus_label
    ]
    chunks = [chunk for chunk in _chunk(sorted(owned_candidates, key=str), threads) if chunk]
    if not chunks:
        return FragmentResult(fragment_id=fragment_id, answer=set(), counter=WorkCounter())

    use_plan = plan is not None and isinstance(engine, QMatch)

    def run_chunk(chunk: List[NodeId]) -> MatchResult:
        # Each chunk restricts the verified focus candidates to its share of
        # the owned nodes, so the chunks partition the fragment's verification
        # work without overlapping.
        if use_plan:
            return engine.evaluate(
                pattern,
                fragment_graph,
                focus_restriction=set(chunk),
                plan=plan,
                plan_binding=plan_binding,
            )
        return engine.evaluate(pattern, fragment_graph, focus_restriction=set(chunk))

    counter = WorkCounter()
    answer: Set[NodeId] = set()
    with Timer() as timer:
        if thread_pool is not None:
            results = list(thread_pool.map(run_chunk, chunks))
        else:
            results = [run_chunk(chunk) for chunk in chunks]
        for result in results:
            answer |= _restrict_answer_to_owned(result, owned_nodes)
            counter.merge(result.counter)
    return FragmentResult(
        fragment_id=fragment_id, answer=answer, counter=counter, elapsed=timer.elapsed
    )
