"""Per-fragment matching work (the paper's ``mQMatch``).

A worker receives one fragment of a d-hop preserving partition and the QGP,
and evaluates the pattern *locally*: because the fragment contains the full
d-hop neighbourhood of every node it owns, and the pattern radius is at most
d, a focus candidate owned by the fragment matches in the fragment if and only
if it matches in the whole graph (paper Lemma 9(1)).  Restricting the focus
candidates to the owned nodes also guarantees that no answer is reported by
two workers, so the coordinator can simply union the partial answers.

``mqmatch_fragment`` additionally supports splitting the owned focus
candidates into ``threads`` chunks that are evaluated independently — the
intra-fragment parallelism of the paper's mQMatch.  With the default
``thread_pool=None`` the chunks run sequentially but are still accounted
separately, which is what the simulated cluster uses to model intra-fragment
speedups deterministically.
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import Hashable, List, Optional, Sequence, Set

from repro.graph.digraph import PropertyGraph
from repro.matching.qmatch import QMatch
from repro.matching.result import FragmentResult, MatchResult
from repro.parallel.partition import Fragment, HopPreservingPartition
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.utils.counters import WorkCounter
from repro.utils.timing import Timer

__all__ = ["match_fragment", "mqmatch_fragment", "FragmentTask"]

NodeId = Hashable


class FragmentTask:
    """A picklable unit of work: evaluate *pattern* on one fragment graph.

    Process-pool executors need the task to be self-contained, so the fragment
    graph is materialised before the task is shipped.
    """

    def __init__(
        self,
        fragment_id: int,
        fragment_graph: PropertyGraph,
        owned_nodes: Set[NodeId],
        pattern: QuantifiedGraphPattern,
        engine: QMatch,
    ) -> None:
        self.fragment_id = fragment_id
        self.fragment_graph = fragment_graph
        self.owned_nodes = owned_nodes
        self.pattern = pattern
        self.engine = engine

    def run(self) -> FragmentResult:
        return match_fragment(
            self.pattern, self.fragment_graph, self.owned_nodes, self.engine, self.fragment_id
        )


def _restrict_answer_to_owned(result: MatchResult, owned_nodes: Set[NodeId]) -> Set[NodeId]:
    return {node for node in result.answer if node in owned_nodes}


def match_fragment(
    pattern: QuantifiedGraphPattern,
    fragment_graph: PropertyGraph,
    owned_nodes: Set[NodeId],
    engine: Optional[QMatch] = None,
    fragment_id: int = 0,
) -> FragmentResult:
    """Evaluate *pattern* on one fragment, verifying only owned focus candidates.

    Restricting the verified focus candidates to the fragment's owned nodes is
    what makes the union of per-fragment answers exact *and* keeps the total
    work across fragments equal to the sequential work: every candidate is
    verified by exactly one worker (its owner), inside the fragment that holds
    its whole d-hop neighbourhood.
    """
    engine = engine or QMatch()
    with Timer() as timer:
        try:
            result = engine.evaluate(pattern, fragment_graph, focus_restriction=owned_nodes)
        except TypeError:
            # Engines without per-candidate decomposition (e.g. the Enum
            # baseline) evaluate the whole fragment and filter afterwards.
            result = engine.evaluate(pattern, fragment_graph)
        answer = _restrict_answer_to_owned(result, owned_nodes)
    fragment_result = FragmentResult(
        fragment_id=fragment_id,
        answer=answer,
        counter=result.counter,
        elapsed=timer.elapsed,
    )
    return fragment_result


def _chunk(sequence: Sequence[NodeId], chunks: int) -> List[List[NodeId]]:
    """Split *sequence* into at most *chunks* contiguous, near-equal chunks."""
    chunks = max(1, chunks)
    items = list(sequence)
    if not items:
        return [[]]
    size = (len(items) + chunks - 1) // chunks
    return [items[i : i + size] for i in range(0, len(items), size)]


def mqmatch_fragment(
    pattern: QuantifiedGraphPattern,
    fragment_graph: PropertyGraph,
    owned_nodes: Set[NodeId],
    engine: Optional[QMatch] = None,
    fragment_id: int = 0,
    threads: int = 1,
    thread_pool: Optional[Executor] = None,
) -> FragmentResult:
    """mQMatch: intra-fragment parallel evaluation over owned focus candidates.

    The owned focus candidates are split into *threads* chunks; each chunk is
    evaluated by a full QMatch run restricted (via the candidate index) to its
    chunk of candidates, and the partial answers are unioned.  When a
    ``thread_pool`` is supplied the chunks run concurrently; otherwise they run
    sequentially (useful for deterministic work accounting).
    """
    engine = engine or QMatch()
    if threads <= 1:
        return match_fragment(pattern, fragment_graph, owned_nodes, engine, fragment_id)

    focus_label = pattern.node_label(pattern.focus)
    owned_candidates = [
        node for node in owned_nodes
        if fragment_graph.has_node(node) and fragment_graph.node_label(node) == focus_label
    ]
    chunks = [chunk for chunk in _chunk(sorted(owned_candidates, key=str), threads) if chunk]
    if not chunks:
        return FragmentResult(fragment_id=fragment_id, answer=set(), counter=WorkCounter())

    def run_chunk(chunk: List[NodeId]) -> MatchResult:
        # Each chunk restricts the verified focus candidates to its share of
        # the owned nodes, so the chunks partition the fragment's verification
        # work without overlapping.
        return engine.evaluate(pattern, fragment_graph, focus_restriction=set(chunk))

    counter = WorkCounter()
    answer: Set[NodeId] = set()
    with Timer() as timer:
        if thread_pool is not None:
            results = list(thread_pool.map(run_chunk, chunks))
        else:
            results = [run_chunk(chunk) for chunk in chunks]
        for result in results:
            answer |= _restrict_answer_to_owned(result, owned_nodes)
            counter.merge(result.counter)
    return FragmentResult(
        fragment_id=fragment_id, answer=answer, counter=counter, elapsed=timer.elapsed
    )
