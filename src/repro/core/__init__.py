"""The stable public API of the reproduction, re-exported in one namespace.

Downstream users should import from ``repro.core`` (or the top-level
``repro``): it exposes the graph substrate, the QGP model, the sequential and
parallel matching engines, and the QGAR layer, without reaching into the
internal module layout.
"""

from repro.delta import GraphDelta, apply_delta, graph_diff, inc_qmatch_delta
from repro.graph import PropertyGraph, small_world_social_graph
from repro.index import GraphIndex
from repro.matching import (
    DMatchOptions,
    EnumMatcher,
    MatchResult,
    ParallelMatchResult,
    QMatch,
    qmatch_engine,
    qmatch_n_engine,
)
from repro.parallel import (
    DPar,
    HopPreservingPartition,
    PQMatch,
    penum_engine,
    pqmatch_engine,
    pqmatch_n_engine,
    pqmatch_s_engine,
)
from repro.patterns import (
    CountingQuantifier,
    PatternBuilder,
    QuantifiedGraphPattern,
    parse_pattern,
)
from repro.obs import (
    MetricsRegistry,
    ServiceIntrospection,
    SlowQueryLog,
    active_metrics,
    active_tracing,
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    format_span_tree,
    get_registry,
    get_tracer,
    span,
)
from repro.rules import QGAR, dgar_match, gar_match, mine_qgars
from repro.serve import (
    AdmissionConfig,
    AdmissionQueue,
    ShardedService,
    SharedResultCache,
    VersionVector,
    build_shards,
)
from repro.service import (
    QueryService,
    ResultCache,
    ServiceResult,
    Subscription,
    canonicalize,
    pattern_fingerprint,
)

__all__ = [
    "PropertyGraph",
    "GraphIndex",
    "GraphDelta",
    "apply_delta",
    "graph_diff",
    "inc_qmatch_delta",
    "small_world_social_graph",
    "CountingQuantifier",
    "QuantifiedGraphPattern",
    "PatternBuilder",
    "parse_pattern",
    "EnumMatcher",
    "QMatch",
    "qmatch_engine",
    "qmatch_n_engine",
    "DMatchOptions",
    "MatchResult",
    "ParallelMatchResult",
    "DPar",
    "HopPreservingPartition",
    "PQMatch",
    "pqmatch_engine",
    "pqmatch_s_engine",
    "pqmatch_n_engine",
    "penum_engine",
    "QGAR",
    "gar_match",
    "dgar_match",
    "mine_qgars",
    "QueryService",
    "ServiceResult",
    "ResultCache",
    "Subscription",
    "canonicalize",
    "pattern_fingerprint",
    "ShardedService",
    "VersionVector",
    "SharedResultCache",
    "AdmissionConfig",
    "AdmissionQueue",
    "build_shards",
    "MetricsRegistry",
    "ServiceIntrospection",
    "SlowQueryLog",
    "enable_metrics",
    "disable_metrics",
    "active_metrics",
    "get_registry",
    "enable_tracing",
    "disable_tracing",
    "active_tracing",
    "get_tracer",
    "span",
    "format_span_tree",
]
