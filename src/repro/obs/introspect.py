"""`repro.obs.introspect` — request-level visibility into a serving stack.

Where :mod:`repro.obs.metrics` aggregates process-wide totals, this module
answers the operator questions about **one** :class:`~repro.service.server.
QueryService`: which fingerprints are hot, what their p50/p99 latencies are,
how full the cache is, which pool epoch is live, and which queries were slow
enough to care about.  It is deliberately **always on** — every instrument
here observes at request granularity (a handful of arithmetic operations per
served query, never per probe), so the sequential matching hot path is
untouched and ``QueryService.stats()`` works without enabling the global
registry.

Two pieces:

* :class:`ServiceIntrospection` — per-fingerprint request counts, cache-hit
  counts and latency histograms (p50/p99 by bucket interpolation), bounded to
  ``capacity`` fingerprints (LRU beyond it: introspection must never become
  the memory leak it is meant to find).
* :class:`SlowQueryLog` — a bounded log of queries whose service time
  crossed a configurable threshold, each record carrying the fingerprint,
  pattern name, elapsed seconds and the matching-layer work counters
  (verifications / extensions / quantifier checks) plus the affected-area
  size when the delta layer produced one.  This is the seed data for a
  future cardinality-estimation planner: a pathological matching order shows
  up here with exactly the counters a cost model needs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, Histogram
from repro.utils.counters import WorkCounter

__all__ = ["FingerprintStats", "ServiceIntrospection", "SlowQueryLog", "SlowQueryRecord"]


class FingerprintStats:
    """Latency and traffic accounting for one canonical fingerprint."""

    __slots__ = ("fingerprint", "pattern_name", "requests", "cache_hits",
                 "computed", "_histogram", "last_elapsed", "verifications")

    def __init__(self, fingerprint: str, lock: threading.Lock) -> None:
        self.fingerprint = fingerprint
        self.pattern_name = ""
        self.requests = 0
        self.cache_hits = 0
        self.computed = 0
        self.verifications = 0
        self.last_elapsed = 0.0
        self._histogram = Histogram(
            f"fingerprint.{fingerprint[:12]}", lock, DEFAULT_LATENCY_BUCKETS
        )

    @property
    def p50(self) -> float:
        return self._histogram.quantile(0.50)

    @property
    def p99(self) -> float:
        return self._histogram.quantile(0.99)

    @property
    def mean(self) -> float:
        return self._histogram.mean

    def as_dict(self) -> Dict[str, object]:
        return {
            "pattern": self.pattern_name,
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "verifications": self.verifications,
            "p50_seconds": self.p50,
            "p99_seconds": self.p99,
            "mean_seconds": self.mean,
            "last_seconds": self.last_elapsed,
        }


@dataclass(frozen=True)
class SlowQueryRecord:
    """One logged slow query — fingerprint, timing, and its work counters.

    ``plan`` names the compiled plan that served the request (fingerprint
    prefix + the plan's matching-order rendering), empty for cache hits and
    plan-less engines — so a pathological order is diagnosable straight from
    ``QueryService.stats()`` without re-running the query.

    The serve-tier fields make a slow *fleet* query diagnosable from the log
    alone: ``shard_fanout`` counts the shards the request actually touched
    (0 for a single service), ``cache_route`` names the level that answered
    (``"l1"``/``"l2"``/``"fanout"`` at the router, ``"l1"``/``"compute"``
    inside one service, empty when unknown), and ``admission_wait`` is the
    seconds the request sat queued before a dispatcher claimed it.
    """

    fingerprint: str
    pattern_name: str
    elapsed: float
    threshold: float
    cached: bool
    verifications: int = 0
    extensions: int = 0
    quantifier_checks: int = 0
    aff_size: int = 0
    batch_size: int = 1
    plan: str = ""
    shard_fanout: int = 0
    cache_route: str = ""
    admission_wait: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "pattern": self.pattern_name,
            "elapsed_seconds": self.elapsed,
            "threshold_seconds": self.threshold,
            "cached": self.cached,
            "verifications": self.verifications,
            "extensions": self.extensions,
            "quantifier_checks": self.quantifier_checks,
            "aff_size": self.aff_size,
            "batch_size": self.batch_size,
            "plan": self.plan,
            "shard_fanout": self.shard_fanout,
            "cache_route": self.cache_route,
            "admission_wait_seconds": self.admission_wait,
        }


class SlowQueryLog:
    """A bounded log of requests slower than *threshold* seconds.

    ``threshold=None`` disables logging entirely (the default for services
    that did not opt in); ``threshold=0.0`` logs everything, which is what
    regression tests use to capture pathological patterns deterministically.
    """

    def __init__(self, threshold: Optional[float] = None, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("slow-query log capacity must be positive")
        self.threshold = threshold
        self.capacity = capacity
        self._records: Deque[SlowQueryRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        return self.threshold is not None

    def record(
        self,
        fingerprint: str,
        pattern_name: str,
        elapsed: float,
        cached: bool = False,
        counter: Optional[WorkCounter] = None,
        aff_size: int = 0,
        batch_size: int = 1,
        plan: str = "",
        shard_fanout: int = 0,
        cache_route: str = "",
        admission_wait: float = 0.0,
    ) -> Optional[SlowQueryRecord]:
        """File the request if it crossed the threshold; returns the record."""
        if self.threshold is None or elapsed < self.threshold:
            return None
        entry = SlowQueryRecord(
            fingerprint=fingerprint,
            pattern_name=pattern_name,
            elapsed=elapsed,
            threshold=self.threshold,
            cached=cached,
            verifications=counter.verifications if counter else 0,
            extensions=counter.extensions if counter else 0,
            quantifier_checks=counter.quantifier_checks if counter else 0,
            aff_size=aff_size,
            batch_size=batch_size,
            plan=plan,
            shard_fanout=shard_fanout,
            cache_route=cache_route,
            admission_wait=admission_wait,
        )
        with self._lock:
            if len(self._records) == self.capacity:
                self.dropped += 1
            self._records.append(entry)
        return entry

    def records(self) -> Tuple[SlowQueryRecord, ...]:
        with self._lock:
            return tuple(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:
        return (
            f"SlowQueryLog(threshold={self.threshold}, size={len(self)}/"
            f"{self.capacity}, dropped={self.dropped})"
        )


class ServiceIntrospection:
    """Always-on per-service accounting behind ``QueryService.stats()``."""

    def __init__(
        self,
        capacity: int = 512,
        slow_query_threshold: Optional[float] = None,
        slow_query_capacity: int = 64,
    ) -> None:
        if capacity <= 0:
            raise ValueError("introspection capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._fingerprints: "OrderedDict[str, FingerprintStats]" = OrderedDict()
        self.slow_queries = SlowQueryLog(slow_query_threshold, slow_query_capacity)

    # -------------------------------------------------------------- recording

    def observe(
        self,
        fingerprint: str,
        pattern_name: str,
        elapsed: float,
        cached: bool,
        counter: Optional[WorkCounter] = None,
        aff_size: int = 0,
        batch_size: int = 1,
        plan: str = "",
        shard_fanout: int = 0,
        cache_route: str = "",
        admission_wait: float = 0.0,
    ) -> Optional[SlowQueryRecord]:
        """Account one served request (hit or computed) for *fingerprint*.

        Returns the :class:`SlowQueryRecord` when the request also crossed
        the slow-query threshold (callers feed it to the flight recorder),
        else ``None``.
        """
        with self._lock:
            stats = self._fingerprints.get(fingerprint)
            if stats is None:
                stats = FingerprintStats(fingerprint, self._lock)
                self._fingerprints[fingerprint] = stats
                while len(self._fingerprints) > self.capacity:
                    self._fingerprints.popitem(last=False)
            else:
                self._fingerprints.move_to_end(fingerprint)
            stats.pattern_name = pattern_name
            stats.requests += 1
            stats.last_elapsed = elapsed
            if cached:
                stats.cache_hits += 1
            else:
                stats.computed += 1
            if counter is not None:
                stats.verifications += counter.verifications
        # The per-fingerprint histogram shares this introspection's lock,
        # and observe() re-acquires it — so file the sample outside the
        # with-block above.
        stats._histogram.observe(elapsed)
        return self.slow_queries.record(
            fingerprint,
            pattern_name,
            elapsed,
            cached=cached,
            counter=counter,
            aff_size=aff_size,
            batch_size=batch_size,
            plan=plan,
            shard_fanout=shard_fanout,
            cache_route=cache_route,
            admission_wait=admission_wait,
        )

    # -------------------------------------------------------------- snapshot

    def fingerprint(self, fingerprint: str) -> Optional[FingerprintStats]:
        with self._lock:
            return self._fingerprints.get(fingerprint)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-fingerprint stats, hottest (most recently served) last."""
        with self._lock:
            return {
                fingerprint: stats.as_dict()
                for fingerprint, stats in self._fingerprints.items()
            }

    def top(self, count: int = 10) -> List[Tuple[str, Dict[str, object]]]:
        """The *count* fingerprints with the most requests, descending."""
        with self._lock:
            ranked = sorted(
                self._fingerprints.items(),
                key=lambda item: item[1].requests,
                reverse=True,
            )
        return [(fingerprint, stats.as_dict()) for fingerprint, stats in ranked[:count]]

    def reset(self) -> None:
        with self._lock:
            self._fingerprints.clear()
        self.slow_queries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._fingerprints)
