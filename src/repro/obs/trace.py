"""`repro.obs.trace` — lightweight span tracing with cross-process propagation.

A *span* is one timed region of work with a name, optional string tags, wall
and CPU durations, and a parent — so one served query yields a tree::

    service.batch
      service.dispatch
        pool.round
          worker.fragment   (recorded in a pool worker process)
          worker.fragment
      service.record

Spans are recorded by a process-wide :class:`Tracer` that is **disabled by
default**: ``span(...)`` then returns a shared no-op context manager and the
instrumented code costs one attribute check.  Enable with
:func:`enable_tracing` (or the scoped :func:`active_tracing`).

Cross-process propagation mirrors how fragments already travel: the
coordinator captures its :func:`current_context` — a picklable
``(trace_id, parent span id, enabled)`` triple — and ships it with each
fragment task; the pool worker :meth:`Tracer.adopt`\\ s the context, records
its spans locally, and returns them **piggybacked on the fragment result**.
The coordinator :meth:`Tracer.ingest`\\ s them, so the final record list holds
one coherent tree covering dispatcher → executor round → per-fragment worker
work → merge, with the worker spans carrying their own ``pid``.

Nesting is tracked per *thread* (a thread-local stack), which matches the
library's concurrency model: each serving batch runs entirely on the
dispatcher thread, and each pool worker runs one task at a time.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

__all__ = [
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "active_tracing",
    "span",
    "attach",
    "record_span",
    "current_context",
    "build_span_tree",
    "format_span_tree",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.  Frozen and picklable — this is the wire form.

    ``tags`` is a tuple of ``(key, value)`` string pairs (not a dict) so the
    record hashes and pickles cheaply; ``pid`` identifies the recording
    process, which is how a span tree shows work that crossed the process
    boundary.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    wall: float
    cpu: float
    pid: int
    tags: Tuple[Tuple[str, str], ...] = ()

    def tag(self, key: str) -> Optional[str]:
        for tag_key, value in self.tags:
            if tag_key == key:
                return value
        return None


class TraceContext(NamedTuple):
    """The picklable propagation triple shipped across process boundaries."""

    trace_id: str
    parent_id: Optional[str]
    enabled: bool


# The disabled triple is immutable and identical for every caller, so the
# disabled ``current_context()`` path hands out one shared instance instead of
# allocating a tuple per request.
_DISABLED_CONTEXT = TraceContext("", None, False)


def _freeze_tags(tags: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple((key, str(value)) for key, value in sorted(tags.items()))


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    record = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **tags: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """A live span: times the ``with`` body and files a :class:`SpanRecord`."""

    __slots__ = ("_tracer", "name", "tags", "trace_id", "span_id", "parent_id",
                 "_start", "_wall0", "_cpu0", "record")

    def __init__(self, tracer: "Tracer", name: str, tags: Tuple[Tuple[str, str], ...]) -> None:
        self._tracer = tracer
        self.name = name
        self.tags = tags
        self.record: Optional[SpanRecord] = None

    def annotate(self, **tags: object) -> "_ActiveSpan":
        """Append tags discovered mid-span (e.g. outcomes known only at the
        end of the batch).  Appended after the constructor tags, each group
        sorted within itself."""
        self.tags = self.tags + _freeze_tags(tags)
        return self

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack = tracer._stack()
        if stack:
            self.trace_id, self.parent_id = stack[-1]
        else:
            self.trace_id, self.parent_id = tracer._new_trace_id(), None
        self.span_id = tracer._new_span_id()
        stack.append((self.trace_id, self.span_id))
        self._start = time.time()
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        stack = self._tracer._stack()
        if stack and stack[-1][1] == self.span_id:
            stack.pop()
        self.record = SpanRecord(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            start=self._start,
            wall=wall,
            cpu=cpu,
            pid=os.getpid(),
            tags=self.tags,
        )
        self._tracer._file(self.record)
        return False


class Tracer:
    """Process-wide span recorder with a per-thread nesting stack."""

    def __init__(self) -> None:
        self.enabled = False
        self._records: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    # ------------------------------------------------------------- plumbing

    def _stack(self) -> List[Tuple[str, Optional[str]]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _new_trace_id(self) -> str:
        return f"t{os.getpid():x}-{next(self._ids):x}"

    def _new_span_id(self) -> str:
        return f"s{os.getpid():x}-{next(self._ids):x}"

    def _file(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------ recording

    def span(self, name: str, **tags: object):
        """A context manager timing one region (no-op while disabled).

        Tags are stringified — they are labels for humans and tests, not a
        side channel for data.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, _freeze_tags(tags))

    def current_context(self) -> TraceContext:
        """The propagation triple for the innermost active span (picklable)."""
        if not self.enabled:
            return _DISABLED_CONTEXT
        stack = self._stack()
        if stack:
            trace_id, span_id = stack[-1]
            return TraceContext(trace_id, span_id, True)
        return TraceContext(self._new_trace_id(), None, True)

    @contextmanager
    def attach(self, context: TraceContext) -> Iterator[None]:
        """Parent this thread's spans under *context* (coordinator side).

        The complement of :meth:`adopt` for work that stays **in process**
        but hops threads: a dispatcher thread serving a request submitted on
        another thread attaches the submitter's context, so the spans it
        records nest under the submitter's ``*.submit`` span instead of
        starting a disconnected tree.  Unlike ``adopt``, records are filed
        locally and stay here — this tracer already owns the tree — and the
        tracer's enabled state is left alone (a context captured while
        tracing was on does not resurrect tracing that was turned off since).
        """
        if not context.enabled or not self.enabled:
            yield
            return
        stack = self._stack()
        frame = (context.trace_id, context.parent_id)
        stack.append(frame)
        try:
            yield
        finally:
            if stack and stack[-1] == frame:
                stack.pop()

    def record_span(
        self,
        name: str,
        start: float,
        wall: float,
        cpu: float = 0.0,
        context: Optional[TraceContext] = None,
        **tags: object,
    ) -> Optional[SpanRecord]:
        """File an already-measured span (no ``with`` body timed it).

        This is how waits that end before the tracer sees them — time spent
        queued in the admission queue, measured by enqueue/claim timestamps —
        appear in the tree.  Parents under *context* when given (and
        enabled), else under the innermost active span of this thread.
        Returns the filed record, or ``None`` while disabled.
        """
        if not self.enabled:
            return None
        if context is not None:
            if not context.enabled:
                return None
            trace_id, parent_id = context.trace_id, context.parent_id
        else:
            stack = self._stack()
            if stack:
                trace_id, parent_id = stack[-1]
            else:
                trace_id, parent_id = self._new_trace_id(), None
        record = SpanRecord(
            trace_id=trace_id,
            span_id=self._new_span_id(),
            parent_id=parent_id,
            name=name,
            start=start,
            wall=wall,
            cpu=cpu,
            pid=os.getpid(),
            tags=_freeze_tags(tags),
        )
        self._file(record)
        return record

    @contextmanager
    def adopt(self, context: TraceContext) -> Iterator[List[SpanRecord]]:
        """Attach this process's spans under a remote parent (worker side).

        Enables recording for the duration, parents new spans under
        ``context.parent_id``, and yields a list that is filled — on exit —
        with exactly the records created inside the block, removed from the
        local tracer (they are shipped back to the coordinator, which is the
        tree's owner; keeping them here too would double-count).
        """
        collected: List[SpanRecord] = []
        if not context.enabled:
            yield collected
            return
        was_enabled = self.enabled
        self.enabled = True
        stack = self._stack()
        stack.append((context.trace_id, context.parent_id))
        with self._lock:
            mark = len(self._records)
        try:
            yield collected
        finally:
            if stack and stack[-1] == (context.trace_id, context.parent_id):
                stack.pop()
            self.enabled = was_enabled
            with self._lock:
                collected.extend(self._records[mark:])
                del self._records[mark:]

    # ----------------------------------------------------------- collection

    def ingest(self, records: Sequence[SpanRecord]) -> None:
        """File spans recorded elsewhere (shipped back from pool workers)."""
        if not records:
            return
        with self._lock:
            self._records.extend(records)

    def records(self) -> Tuple[SpanRecord, ...]:
        with self._lock:
            return tuple(self._records)

    def drain(self) -> Tuple[SpanRecord, ...]:
        """Return all records and clear the buffer (typical per-test usage)."""
        with self._lock:
            records = tuple(self._records)
            self._records.clear()
            return records

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
        self._local = threading.local()


_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def enable_tracing() -> Tracer:
    _TRACER.enabled = True
    return _TRACER


def disable_tracing() -> None:
    _TRACER.enabled = False


def tracing_enabled() -> bool:
    return _TRACER.enabled


@contextmanager
def active_tracing() -> Iterator[Tracer]:
    """Scoped tracing for tests and benchmarks: enable, yield, restore + drain."""
    was_enabled = _TRACER.enabled
    _TRACER.enabled = True
    try:
        yield _TRACER
    finally:
        _TRACER.enabled = was_enabled
        if not was_enabled:
            _TRACER.drain()


def span(name: str, **tags: object):
    """``with span("qmatch.enumerate", fingerprint=fp): ...`` on the global tracer."""
    return _TRACER.span(name, **tags)


def attach(context: TraceContext):
    """``with attach(ctx): ...`` on the global tracer (see :meth:`Tracer.attach`)."""
    return _TRACER.attach(context)


def record_span(
    name: str,
    start: float,
    wall: float,
    cpu: float = 0.0,
    context: Optional[TraceContext] = None,
    **tags: object,
) -> Optional[SpanRecord]:
    """File a pre-measured span on the global tracer (see :meth:`Tracer.record_span`)."""
    return _TRACER.record_span(name, start, wall, cpu=cpu, context=context, **tags)


def current_context() -> TraceContext:
    return _TRACER.current_context()


# ----------------------------------------------------------------- span trees


@dataclass
class SpanNode:
    """One node of an assembled span tree."""

    record: SpanRecord
    children: List["SpanNode"]


def build_span_tree(records: Sequence[SpanRecord]) -> List[SpanNode]:
    """Assemble records into forests (one root per parentless span).

    A span whose parent is not among *records* (e.g. its parent was recorded
    in a process whose records were not shipped) becomes a root — the tree is
    best-effort by design, never an error.  Children sort by start time.
    """
    nodes: Dict[str, SpanNode] = {
        record.span_id: SpanNode(record, []) for record in records
    }
    roots: List[SpanNode] = []
    for record in records:
        node = nodes[record.span_id]
        parent = nodes.get(record.parent_id) if record.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.record.start)
    roots.sort(key=lambda root: root.record.start)
    return roots


def format_span_tree(
    records: Sequence[SpanRecord], show_times: bool = True
) -> str:
    """Indented text rendering of the span forest.

    With ``show_times=False`` the output is deterministic (names, tags and
    cross-process markers only), which is what doctests print.
    """
    home_pid = os.getpid()
    lines: List[str] = []

    def _walk(node: SpanNode, depth: int) -> None:
        record = node.record
        parts = [f"{'  ' * depth}{record.name}"]
        if record.tags:
            rendered = ", ".join(f"{key}={value}" for key, value in record.tags)
            parts.append(f"[{rendered}]")
        if record.pid != home_pid:
            parts.append("(remote)")
        if show_times:
            parts.append(f"wall={record.wall * 1e3:.2f}ms cpu={record.cpu * 1e3:.2f}ms")
        lines.append(" ".join(parts))
        for child in node.children:
            _walk(child, depth + 1)

    for root in build_span_tree(records):
        _walk(root, 0)
    return "\n".join(lines)
