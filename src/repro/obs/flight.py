"""`repro.obs.flight` — a flight recorder for post-mortem serving debugging.

The concurrency suites fail the way aircraft do: by the time the assertion
fires, the interesting part — which queries were in flight, which delta
landed between them, which shared-cache read degraded — already happened, on
another thread, with no record.  A :class:`FlightRecorder` is the black box:
a set of **bounded ring buffers** (one :class:`collections.deque` per event
kind) holding the most recent query / delta / degraded-read / slow-query
events, each stamped with a process-monotonic sequence number so events from
different buffers interleave into one global order after the fact.

Design constraints, in priority order:

* **always cheap** — recording is one lock, one dict, one deque append; no
  I/O, no stringification, no unbounded growth.  It is always on (like
  :class:`~repro.obs.introspect.ServiceIntrospection`) and observes at
  query/delta grain, never per probe.  ``capacity=0`` disables recording
  entirely (the constructor knob for overhead baselines);
* **bounded by construction** — each kind keeps its last ``capacity`` events
  and silently drops the oldest; ``dropped`` counts what aged out;
* **dumpable** — :meth:`snapshot` is plain dicts and :meth:`dump_json`
  writes them to disk, which is what the CI instrumented run archives.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["FlightEvent", "FlightRecorder"]

# The canonical event kinds pre-created by every recorder; ad-hoc kinds are
# accepted too (a deque appears on first use) so layers can add event types
# without touching this module.
KINDS = ("query", "delta", "degraded", "slow_query")


@dataclass(frozen=True)
class FlightEvent:
    """One recorded event.

    ``seq`` is monotone across *all* kinds of one recorder — sorting any
    selection of events by it reconstructs the recording order exactly, which
    is the property post-mortems need (a wall-clock ``timestamp`` alone can
    tie or run backwards under NTP).
    """

    seq: int
    kind: str
    timestamp: float
    data: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "seq": self.seq,
            "kind": self.kind,
            "timestamp": self.timestamp,
        }
        payload.update(self.data)
        return payload


class FlightRecorder:
    """Bounded per-kind ring buffers of recent serving events.

    Thread-safe: one lock guards the sequence counter and every buffer, so a
    snapshot is a consistent cut (no torn seq order).  ``capacity`` bounds
    each kind independently — a delta storm cannot evict the query history.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError("flight recorder capacity must be non-negative")
        self.capacity = capacity
        self.dropped = 0
        self._seq = 0
        self._lock = threading.Lock()
        self._buffers: Dict[str, Deque[FlightEvent]] = {}
        if capacity:
            for kind in KINDS:
                self._buffers[kind] = deque(maxlen=capacity)

    def __bool__(self) -> bool:
        return self.capacity > 0

    # -------------------------------------------------------------- recording

    def record(self, kind: str, **data: object) -> Optional[FlightEvent]:
        """File one event of *kind*; returns it (``None`` when disabled)."""
        if not self.capacity:
            return None
        timestamp = time.time()
        with self._lock:
            buffer = self._buffers.get(kind)
            if buffer is None:
                buffer = deque(maxlen=self.capacity)
                self._buffers[kind] = buffer
            self._seq += 1
            event = FlightEvent(seq=self._seq, kind=kind, timestamp=timestamp, data=data)
            if len(buffer) == self.capacity:
                self.dropped += 1
            buffer.append(event)
        return event

    # --------------------------------------------------------------- reading

    def events(self, kind: Optional[str] = None) -> Tuple[FlightEvent, ...]:
        """Events of one *kind* (recording order), or of all kinds merged by seq."""
        with self._lock:
            if kind is not None:
                return tuple(self._buffers.get(kind, ()))
            merged: List[FlightEvent] = []
            for buffer in self._buffers.values():
                merged.extend(buffer)
        merged.sort(key=lambda event: event.seq)
        return tuple(merged)

    def snapshot(self) -> Dict[str, object]:
        """The introspection payload: per-kind event dicts plus bookkeeping."""
        with self._lock:
            buffers = {
                kind: [event.as_dict() for event in buffer]
                for kind, buffer in self._buffers.items()
            }
            return {
                "capacity": self.capacity,
                "recorded": self._seq,
                "dropped": self.dropped,
                "events": buffers,
            }

    def dump_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """The snapshot as JSON text; also written to *path* when given.

        Non-JSON-native values (frozensets, node ids) are stringified rather
        than refused — a black box that crashes the post-mortem is worse
        than one with lossy strings.
        """
        text = json.dumps(self.snapshot(), indent=indent, sort_keys=True, default=str)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    # ------------------------------------------------------------- lifecycle

    def clear(self) -> None:
        with self._lock:
            for buffer in self._buffers.values():
                buffer.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return sum(len(buffer) for buffer in self._buffers.values())

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(capacity={self.capacity}, events={len(self)}, "
            f"dropped={self.dropped})"
        )
