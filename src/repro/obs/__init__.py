"""`repro.obs` — unified observability: metrics, tracing, introspection.

The seventh layer of the stack.  The index, matching, parallel, service and
delta layers each grew their own ad-hoc counters as they were built; this
package gives them one registry (:mod:`repro.obs.metrics`), one span tracer
with cross-process propagation (:mod:`repro.obs.trace`) and one request-level
introspection surface (:mod:`repro.obs.introspect`), while keeping the
default cost at effectively zero: the process-wide registry defaults to a
falsy no-op singleton and the tracer defaults to disabled, so nothing is
recorded — or allocated — until :func:`enable_metrics` / \
:func:`enable_tracing` opt in.

The correctness-critical counters the test suite asserts on
(``GraphIndex.build`` calls, refresh fallbacks) are *always* counted — they
live in :data:`repro.obs.metrics.CORE`, a resettable object the per-test
isolation fixture clears — and are mirrored into the optional registry when
one is active.  See ``docs/OBSERVABILITY.md`` for the executable walkthrough.
"""

from repro.obs.flight import FlightEvent, FlightRecorder
from repro.obs.introspect import (
    FingerprintStats,
    ServiceIntrospection,
    SlowQueryLog,
    SlowQueryRecord,
)
from repro.obs.metrics import (
    CORE,
    CoreCounters,
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    active_metrics,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    parse_exposition,
    set_registry,
)
from repro.obs.trace import (
    SpanRecord,
    TraceContext,
    Tracer,
    active_tracing,
    attach,
    build_span_tree,
    current_context,
    disable_tracing,
    enable_tracing,
    format_span_tree,
    get_tracer,
    record_span,
    span,
    tracing_enabled,
)

# Imported last: explain leans on the plan/matching layers, which themselves
# import repro.obs.metrics — the late import keeps the package acyclic.
from repro.obs.explain import (
    ExplainReport,
    ExplainStep,
    StatsRegistry,
    build_report,
    estimate_steps,
    q_error,
)

__all__ = [
    # metrics
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "CoreCounters",
    "CORE",
    "get_registry",
    "set_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "active_metrics",
    "parse_exposition",
    "DEFAULT_LATENCY_BUCKETS",
    # trace
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "active_tracing",
    "span",
    "attach",
    "record_span",
    "current_context",
    "build_span_tree",
    "format_span_tree",
    # introspection
    "ServiceIntrospection",
    "FingerprintStats",
    "SlowQueryLog",
    "SlowQueryRecord",
    # explain
    "ExplainStep",
    "ExplainReport",
    "StatsRegistry",
    "estimate_steps",
    "build_report",
    "q_error",
    # flight recorder
    "FlightEvent",
    "FlightRecorder",
    "reset_observability",
]


def reset_observability() -> None:
    """Restore the pristine observability state (used by the test fixture).

    Installs the no-op registry, disables and drains the tracer, and zeroes
    the always-on core counters — one call makes every test start from the
    same observability state, killing the counter-leak footgun the module
    globals used to have.
    """
    disable_metrics()
    tracer = get_tracer()
    tracer.enabled = False
    tracer.reset()
    CORE.reset()
