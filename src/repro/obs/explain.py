"""`repro.obs.explain` — EXPLAIN ANALYZE for served pattern queries.

A compiled plan (:mod:`repro.plan`) already knows *what* will run: the
canonical fingerprint, the stats-derived matching order, the quantifier
closures.  This module adds the two numbers an operator (and ROADMAP open
item 3's adaptive planner) actually needs per step of that order:

* **estimated** cardinality, from the
  :class:`~repro.graph.statistics.CardinalityModel` (label populations and
  typed-triple degree means — what a cost-based optimiser would predict
  *before* running anything), and
* **observed** cardinality, from the probe counts the matching layer already
  tallies — per-depth when :func:`build_report` re-runs the enumeration
  (``analyze=True``, the EXPLAIN ANALYZE of the title), and as per-query
  averages from served traffic via the :class:`StatsRegistry` either way.

The :class:`StatsRegistry` is the **explicit feed for the adaptive planner**
(querytorque-style Q-Error routing): per fingerprint and per graph epoch it
accumulates the served work counters and answer sizes, so
``estimate vs observed`` — :func:`q_error` — is computable for every
fingerprint the service ever computed.  It is bounded two ways (fingerprints
LRU, epochs per fingerprint keep-latest) and always on, observing at query
grain only.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.utils.counters import WorkCounter

__all__ = [
    "ExplainStep",
    "ExplainReport",
    "StatsRegistry",
    "estimate_steps",
    "build_report",
    "q_error",
]

NodeId = Hashable


def q_error(estimated: float, observed: float) -> float:
    """The symmetric ratio error ``max(est/obs, obs/est)`` (1.0 is perfect).

    Zero-on-one-side disagreements are infinite by convention — an estimator
    that predicts nothing for real work (or work for nothing) is maximally
    wrong, and the planning literature treats it that way.
    """
    if estimated <= 0.0 and observed <= 0.0:
        return 1.0
    if estimated <= 0.0 or observed <= 0.0:
        return float("inf")
    ratio = estimated / observed
    return ratio if ratio >= 1.0 else 1.0 / ratio


@dataclass(frozen=True)
class ExplainStep:
    """One step of a matching order, estimated and (optionally) observed.

    ``estimated`` is the expected candidate-pool size when this step extends
    one partial embedding; ``cumulative`` is the expected number of partial
    embeddings alive *after* the step (the product of the pool sizes so
    far).  ``observed`` is the number of extension probes actually performed
    at this depth when the report was built with ``analyze=True``, else
    ``None`` — per-depth observation requires running the search.
    """

    index: int
    node: str
    role: str  # "focus" | "extend"
    estimated: float
    cumulative: float
    observed: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "node": self.node,
            "role": self.role,
            "estimated": self.estimated,
            "cumulative": self.cumulative,
            "observed": self.observed,
        }


def estimate_steps(
    order: Sequence[NodeId],
    labels: Mapping[NodeId, str],
    edges: Sequence[Tuple[NodeId, NodeId, str]],
    model,
    focus: Optional[NodeId] = None,
    render=None,
) -> List[ExplainStep]:
    """Per-step cardinality estimates for *order* under *model*.

    Generic over the node key space — canonical positions (plan previews)
    and live pattern nodes (ANALYZE runs) both work; *edges* are
    ``(source, target, edge label)`` triples in the same key space.  Each
    step's estimate is the tightest single-constraint bound: the minimum,
    over pattern edges into the already-placed region, of the expected typed
    pool (:meth:`CardinalityModel.expected_pool`); a step with no active
    constraint falls back to its label population — exactly the information
    order the backtracking search itself exploits.
    """
    if render is None:
        render = lambda key: f"{key}:{labels[key]}"
    steps: List[ExplainStep] = []
    placed: set = set()
    cumulative = 1.0
    for index, key in enumerate(order):
        label = labels[key]
        bounds: List[float] = []
        for source, target, edge_label in edges:
            if source == key and target in placed:
                bounds.append(
                    model.expected_pool(label, edge_label, labels[target], outgoing=True)
                )
            elif target == key and source in placed:
                bounds.append(
                    model.expected_pool(label, edge_label, labels[source], outgoing=False)
                )
        if bounds:
            estimated = min(bounds)
        else:
            estimated = float(model.label_count(label))
        cumulative *= estimated
        steps.append(
            ExplainStep(
                index=index,
                node=render(key),
                role="focus" if key == focus else "extend",
                estimated=estimated,
                cumulative=cumulative,
            )
        )
        placed.add(key)
    return steps


# --------------------------------------------------------------------------
# The per-fingerprint observation registry (the adaptive planner's feed)
# --------------------------------------------------------------------------


class _EpochStats:
    """Accumulated observations of one fingerprint in one graph epoch."""

    __slots__ = ("queries", "verifications", "extensions", "quantifier_checks",
                 "answers", "seconds")

    def __init__(self) -> None:
        self.queries = 0
        self.verifications = 0
        self.extensions = 0
        self.quantifier_checks = 0
        self.answers = 0
        self.seconds = 0.0

    def as_dict(self) -> Dict[str, float]:
        queries = self.queries or 1
        return {
            "queries": self.queries,
            "verifications_per_query": self.verifications / queries,
            "extensions_per_query": self.extensions / queries,
            "quantifier_checks_per_query": self.quantifier_checks / queries,
            "answers_per_query": self.answers / queries,
            "mean_seconds": self.seconds / queries,
        }


class _FingerprintEntry:
    __slots__ = ("pattern_name", "epochs")

    def __init__(self) -> None:
        self.pattern_name = ""
        self.epochs: "OrderedDict[Hashable, _EpochStats]" = OrderedDict()


class StatsRegistry:
    """Bounded, epoch-aware estimated-vs-observed accounting per fingerprint.

    ``record`` files the work counters and answer size of one *computed*
    query (cache hits carry no fresh observations) under the graph epoch it
    ran against — a scalar version for one service, a version-vector text for
    a fleet.  Fingerprints are LRU-bounded; each fingerprint keeps its most
    recent ``epoch_capacity`` epochs, so a delta stream cannot grow the
    registry and the planner always sees current-epoch behaviour first.
    ``capacity=0`` disables recording (overhead baselines).
    """

    def __init__(self, capacity: int = 256, epoch_capacity: int = 4) -> None:
        if capacity < 0:
            raise ValueError("stats registry capacity must be non-negative")
        if epoch_capacity <= 0:
            raise ValueError("stats registry epoch capacity must be positive")
        self.capacity = capacity
        self.epoch_capacity = epoch_capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _FingerprintEntry]" = OrderedDict()

    def __bool__(self) -> bool:
        return self.capacity > 0

    def record(
        self,
        fingerprint: str,
        pattern_name: str,
        epoch: Hashable,
        counter: Optional[WorkCounter] = None,
        answer_size: int = 0,
        elapsed: float = 0.0,
    ) -> None:
        """Account one computed query for *fingerprint* at *epoch*."""
        if not self.capacity:
            return
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                entry = _FingerprintEntry()
                self._entries[fingerprint] = entry
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
            else:
                self._entries.move_to_end(fingerprint)
            entry.pattern_name = pattern_name
            stats = entry.epochs.get(epoch)
            if stats is None:
                stats = _EpochStats()
                entry.epochs[epoch] = stats
                while len(entry.epochs) > self.epoch_capacity:
                    entry.epochs.popitem(last=False)
            else:
                entry.epochs.move_to_end(epoch)
            stats.queries += 1
            stats.answers += answer_size
            stats.seconds += elapsed
            if counter is not None:
                stats.verifications += counter.verifications
                stats.extensions += counter.extensions
                stats.quantifier_checks += counter.quantifier_checks

    def observed(
        self, fingerprint: str, epoch: Optional[Hashable] = None
    ) -> Optional[Dict[str, object]]:
        """Per-query observation averages (latest epoch unless one is named)."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None or not entry.epochs:
                return None
            if epoch is None:
                epoch = next(reversed(entry.epochs))
            stats = entry.epochs.get(epoch)
            if stats is None:
                return None
            payload = stats.as_dict()
            payload["epoch"] = epoch
            payload["pattern"] = entry.pattern_name
            return payload

    def fingerprints(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._entries)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Every fingerprint's per-epoch averages (introspection payload)."""
        with self._lock:
            return {
                fingerprint: {
                    "pattern": entry.pattern_name,
                    "epochs": {
                        str(epoch): stats.as_dict()
                        for epoch, stats in entry.epochs.items()
                    },
                }
                for fingerprint, entry in self._entries.items()
            }

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# --------------------------------------------------------------------------
# The report
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ExplainReport:
    """The EXPLAIN (ANALYZE) payload for one fingerprint on one graph.

    ``steps`` follow the matching order the report was built for: the
    per-epoch stats-derived preview for plain EXPLAIN, the live search order
    when ``analyzed`` (the ANALYZE run uses the same per-query ordering rule
    the real search does).  ``traffic`` carries the :class:`StatsRegistry`
    per-query averages of served traffic (empty dict when the fingerprint
    was never computed), and the volume/q-error fields compare the model's
    predicted probe volume against whichever observation is available —
    the ANALYZE run's exact probe count, else the traffic average.
    """

    fingerprint: str
    pattern_name: str
    graph_name: str
    graph_version: object
    quantifiers: Tuple[str, ...]
    steps: Tuple[ExplainStep, ...]
    analyzed: bool
    analyze_matches: Optional[int] = None
    analyze_probes: Optional[int] = None
    traffic: Dict[str, object] = field(default_factory=dict)

    @property
    def estimated_volume(self) -> float:
        """Predicted total extension probes: one per expected live embedding."""
        return sum(step.cumulative for step in self.steps)

    @property
    def observed_volume(self) -> Optional[float]:
        if self.analyze_probes is not None:
            return float(self.analyze_probes)
        per_query = self.traffic.get("extensions_per_query")
        if per_query:
            return float(per_query)
        return None

    @property
    def volume_q_error(self) -> Optional[float]:
        observed = self.observed_volume
        if observed is None:
            return None
        return q_error(self.estimated_volume, observed)

    def as_dict(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "pattern": self.pattern_name,
            "graph": self.graph_name,
            "version": self.graph_version,
            "quantifiers": list(self.quantifiers),
            "steps": [step.as_dict() for step in self.steps],
            "analyzed": self.analyzed,
            "analyze_matches": self.analyze_matches,
            "analyze_probes": self.analyze_probes,
            "estimated_volume": self.estimated_volume,
            "observed_volume": self.observed_volume,
            "volume_q_error": self.volume_q_error,
            "traffic": dict(self.traffic),
        }

    def render(self) -> str:
        """The operator-facing text rendering (EXPLAIN ANALYZE style)."""
        mode = "EXPLAIN ANALYZE" if self.analyzed else "EXPLAIN"
        lines = [
            f"{mode} {self.fingerprint[:12]} ({self.pattern_name or 'unnamed'}) "
            f"on {self.graph_name}@{self.graph_version}"
        ]
        if self.quantifiers:
            lines.append(f"  quantifiers: {', '.join(self.quantifiers)}")
        lines.append(f"  order: {' > '.join(step.node for step in self.steps)}")
        for step in self.steps:
            observed = "" if step.observed is None else f"  obs_probes={step.observed}"
            lines.append(
                f"  step {step.index}  {step.node:<24} {step.role:<6} "
                f"est={step.estimated:.1f}  cum={step.cumulative:.1f}{observed}"
            )
        observed_volume = self.observed_volume
        if observed_volume is not None:
            lines.append(
                f"  probe volume: estimated {self.estimated_volume:.1f}, "
                f"observed {observed_volume:.1f}, q-error {self.volume_q_error:.2f}"
            )
        else:
            lines.append(
                f"  probe volume: estimated {self.estimated_volume:.1f}, never observed"
            )
        if self.analyzed:
            lines.append(
                f"  analyze: {self.analyze_matches} embeddings, "
                f"{self.analyze_probes} probes"
            )
        traffic = self.traffic
        if traffic.get("queries"):
            lines.append(
                f"  traffic@{traffic.get('epoch')}: {traffic['queries']} computed, "
                f"{traffic['verifications_per_query']:.1f} verifications/query, "
                f"{traffic['extensions_per_query']:.1f} extensions/query, "
                f"{traffic['answers_per_query']:.1f} answers/query"
            )
        return "\n".join(lines)


def build_report(
    plan,
    graph,
    pattern=None,
    traffic: Optional[Dict[str, object]] = None,
    analyze: bool = False,
    analyze_limit: Optional[int] = None,
    use_index: bool = True,
) -> ExplainReport:
    """Assemble an :class:`ExplainReport` for *plan* against *graph*.

    *plan* is a :class:`repro.plan.CompiledPlan` (duck-typed: the canonical
    shape plus ``order_preview_for``).  With ``analyze=True`` a live
    *pattern* object is required: the topological enumeration re-runs with a
    per-depth probe profile (:meth:`MatchContext.isomorphisms`'s
    ``probe_profile``), giving exact observed cardinalities under the same
    ordering rule production queries use — quantifier counting is layered
    above this search, so the profile covers the probe volume the work
    counters count as ``extensions``.  ``analyze_limit`` bounds the number
    of embeddings enumerated (the profile then covers the truncated run).
    """
    from repro.graph.statistics import cardinality_model

    model = cardinality_model(graph)
    quantifiers = tuple(
        sorted({quantifier.describe() for _, _, _, quantifier in plan.edges})
    )
    analyzed = False
    analyze_matches: Optional[int] = None
    analyze_probes: Optional[int] = None
    if analyze and pattern is not None:
        from repro.matching.generic import MatchContext

        context = MatchContext(pattern, graph, use_index=use_index)
        profile: Dict[int, int] = {}
        matches = 0
        for _ in context.isomorphisms(probe_profile=profile, limit=analyze_limit):
            matches += 1
        labels = {node: pattern.node_label(node) for node in pattern.nodes()}
        triples = [
            (edge.source, edge.target, edge.label) for edge in pattern.edges()
        ]
        steps = [
            ExplainStep(
                index=step.index,
                node=step.node,
                role=step.role,
                estimated=step.estimated,
                cumulative=step.cumulative,
                observed=profile.get(step.index, 0),
            )
            for step in estimate_steps(
                context.order,
                labels,
                triples,
                model,
                focus=pattern.focus if pattern.has_focus() else None,
            )
        ]
        analyzed = True
        analyze_matches = matches
        analyze_probes = sum(profile.values())
    else:
        order = plan.order_preview_for(graph)
        labels = {position: plan.node_labels[position] for position in order}
        triples = [(source, target, label) for source, target, label, _ in plan.edges]
        steps = estimate_steps(
            order,
            labels,
            triples,
            model,
            focus=plan.focus_position,
            render=lambda position: f"x{position}:{labels[position]}",
        )
    return ExplainReport(
        fingerprint=plan.fingerprint,
        pattern_name=(pattern.name if pattern is not None else ""),
        graph_name=graph.name,
        graph_version=graph.version,
        quantifiers=quantifiers,
        steps=tuple(steps),
        analyzed=analyzed,
        analyze_matches=analyze_matches,
        analyze_probes=analyze_probes,
        traffic=dict(traffic or {}),
    )
