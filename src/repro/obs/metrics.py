"""`repro.obs.metrics` — the process-wide metrics registry.

Every performance and correctness claim in this library used to rest on
ad-hoc counters scattered per module (``GraphIndex.build_call_count``,
``ProcessExecutor.last_worker_rebuilds``, the :class:`~repro.service.cache`
hit/miss pair, canonicalization memo hits, the ``MatchContext``
verification/extension counters).  This module gives them one home:

* :class:`MetricsRegistry` — thread-safe counters, gauges and fixed-bucket
  histograms under hierarchical dotted names (``service.cache.hit``,
  ``pool.worker.rebuilds``), with a JSON dump and a Prometheus-style text
  exposition (:meth:`MetricsRegistry.expose_text`, round-trippable through
  :func:`parse_exposition`).
* :class:`NullRegistry` — the **default**: every instrument it hands out is a
  shared no-op singleton, it is falsy, and its methods allocate nothing, so
  instrumented call sites guarded by ``if registry:`` cost one attribute
  lookup when observability is off.  :func:`enable_metrics` swaps the
  process singleton for a real registry; :func:`disable_metrics` swaps it
  back.
* :class:`CoreCounters` — the handful of **always-on** invariant counters the
  test suite's correctness assertions read (``GraphIndex.build`` calls,
  index refresh/fallback counts).  They are plain slotted integers — as cheap
  as the module globals they replace — but now live behind one object with a
  :meth:`CoreCounters.reset`, so tests can isolate them per test instead of
  leaking process-lifetime totals across the suite.

The split matters: optional metrics may be dropped when disabled, but the
core counters *are* the library's invariants (``workers never rebuild``,
``refresh fell back N times``) and must count regardless of whether anyone
is exporting dashboards.  When a real registry is active, the core counters
are mirrored into it (under ``core.*``) by the call sites, so one
:meth:`MetricsRegistry.dump` carries the whole picture.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "CoreCounters",
    "CORE",
    "get_registry",
    "set_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "active_metrics",
    "parse_exposition",
    "DEFAULT_LATENCY_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_.]*$")

# Seconds-scale latency buckets: 100µs .. 30s, roughly exponential.  Fixed
# buckets keep ``observe`` O(log B) and the exposition byte-stable.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r} (use dotted identifiers)")
    return name


class Counter:
    """A monotone counter.  ``inc`` takes the registry lock (shared, cheap)."""

    __slots__ = ("name", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters are monotone; use a Gauge to go down")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def _reset(self) -> None:
        self._value = 0

    def _dump(self) -> Union[int, float]:
        return self._value


class Gauge:
    """A value that can go up and down (pool sizes, cache occupancy, epochs)."""

    __slots__ = ("name", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0

    def _dump(self) -> Union[int, float]:
        return self._value


class Histogram:
    """A fixed-bucket histogram with cumulative bucket counts.

    Buckets are upper bounds (``le``); one implicit ``+inf`` bucket catches
    the tail.  Quantiles are estimated by linear interpolation inside the
    containing bucket — exact enough for p50/p99 reporting, and entirely
    reconstructable from the exposition (the dump carries the per-bucket
    counts, the sum and the total count).
    """

    __slots__ = ("name", "buckets", "_counts", "_sum", "_count", "_lock")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for +inf
        self._sum = 0.0
        self._count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        position = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[position] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated value at quantile *q* (0..1) by bucket interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        lower = 0.0
        for position, upper in enumerate(self.buckets):
            bucket_count = self._counts[position]
            if cumulative + bucket_count >= rank:
                if bucket_count == 0:
                    return upper
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
            lower = upper
        return self.buckets[-1]  # the +inf tail clamps to the last finite bound

    def _reset(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def _dump(self) -> Dict[str, object]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
        }


class MetricsRegistry:
    """A live, thread-safe registry of named instruments.

    Instruments are created on first use and keep their identity for the
    registry's lifetime, so call sites may cache them (``self._hits =
    registry.counter("service.cache.hit")``) or re-resolve by name each time
    — both resolve to the same object.  Asking for an existing name with a
    different instrument kind raises, which catches dotted-name collisions
    early.

    >>> registry = MetricsRegistry()
    >>> registry.counter("service.cache.hit").inc()
    >>> registry.counter("service.cache.hit").inc(2)
    >>> registry.counter("service.cache.hit").value
    3
    >>> bool(registry), bool(NULL_REGISTRY)
    (True, False)
    """

    enabled = True

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self._metrics: "Dict[str, Union[Counter, Gauge, Histogram]]" = {}
        # One lock for structure *and* values: registry traffic is coarse
        # (per query / per batch / per pool round, never per probe), so
        # contention is negligible and the single lock keeps dump/reset
        # trivially consistent.
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def _instrument(self, name: str, kind: type, **kwargs):
        _check_name(name)
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, self._lock, **kwargs)
                self._metrics[name] = metric
            elif type(metric) is not kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {kind.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._instrument(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._instrument(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._instrument(name, Histogram, buckets=buckets)

    # ------------------------------------------------------------- lifecycle

    def reset(self) -> None:
        """Zero every instrument (identities survive — cached handles stay valid)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._reset()

    # ------------------------------------------------------------ exposition

    def dump(self) -> Dict[str, Dict[str, object]]:
        """A JSON-able snapshot: ``{name: {"kind": ..., "value"/"buckets": ...}}``."""
        with self._lock:
            out: Dict[str, Dict[str, object]] = {}
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                entry: Dict[str, object] = {"kind": metric.kind}
                if isinstance(metric, Histogram):
                    entry.update(metric._dump())
                else:
                    entry["value"] = metric._dump()
                out[name] = entry
            return out

    def dump_json(self, indent: int = 2) -> str:
        return json.dumps(self.dump(), indent=indent, sort_keys=True)

    def expose_text(self) -> str:
        """Prometheus-style text exposition.

        Dotted names are flattened to underscores (Prometheus metric-name
        charset); the original dotted name rides in a ``# NAME`` comment so
        :func:`parse_exposition` can reconstruct the dump exactly.
        """
        lines: List[str] = []
        for name, entry in self.dump().items():
            flat = name.replace(".", "_")
            kind = entry["kind"]
            lines.append(f"# NAME {name}")
            lines.append(f"# TYPE {flat} {kind}")
            if kind == "histogram":
                cumulative = 0
                buckets: List[float] = entry["buckets"]  # type: ignore[assignment]
                counts: List[int] = entry["counts"]  # type: ignore[assignment]
                for bound, count in zip(buckets, counts):
                    cumulative += count
                    lines.append(f'{flat}_bucket{{le="{bound!r}"}} {cumulative}')
                cumulative += counts[-1]
                lines.append(f'{flat}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{flat}_sum {entry['sum']!r}")
                lines.append(f"{flat}_count {entry['count']}")
            else:
                lines.append(f"{flat} {entry['value']!r}")
        return "\n".join(lines) + ("\n" if lines else "")

    def as_flat_dict(self) -> Dict[str, float]:
        """Scalar view (histograms collapse to their sums) for figure rows."""
        flat: Dict[str, float] = {}
        for name, entry in self.dump().items():
            if entry["kind"] == "histogram":
                flat[f"{name}.count"] = entry["count"]  # type: ignore[assignment]
                flat[f"{name}.sum"] = entry["sum"]  # type: ignore[assignment]
            else:
                flat[name] = entry["value"]  # type: ignore[assignment]
        return flat

    def __repr__(self) -> str:
        return f"MetricsRegistry(name={self.name!r}, metrics={len(self)})"


# ------------------------------------------------------------- no-op registry


class _NullInstrument:
    """The shared do-nothing counter/gauge/histogram of :class:`NullRegistry`.

    Every mutating method is a no-op that allocates nothing; every read
    reports zero.  One instance serves all three instrument kinds, so the
    disabled path never constructs anything per call site.
    """

    __slots__ = ()

    kind = "null"
    name = "null"
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0
    buckets: Tuple[float, ...] = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The default registry: falsy, no-op, zero-allocation on the hot path.

    Call sites use the two-step guard::

        registry = get_registry()
        if registry:                      # False for NullRegistry
            registry.counter("x").inc()

    so with observability off the instrumented code costs one global read and
    one boolean check.  Sites that skip the guard still work — every
    instrument method on the shared null instrument is a no-op.
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def reset(self) -> None:
        pass

    def dump(self) -> Dict[str, Dict[str, object]]:
        return {}

    def dump_json(self, indent: int = 2) -> str:
        return "{}"

    def expose_text(self) -> str:
        return ""

    def as_flat_dict(self) -> Dict[str, float]:
        return {}

    def __repr__(self) -> str:
        return "NullRegistry()"


NULL_REGISTRY = NullRegistry()

_active: Union[MetricsRegistry, NullRegistry] = NULL_REGISTRY
_active_lock = threading.Lock()


def get_registry() -> Union[MetricsRegistry, NullRegistry]:
    """The process-wide active registry (the no-op singleton by default)."""
    return _active


def set_registry(
    registry: Union[MetricsRegistry, NullRegistry],
) -> Union[MetricsRegistry, NullRegistry]:
    """Install *registry* as the active singleton; returns the previous one."""
    global _active
    with _active_lock:
        previous = _active
        _active = registry
        return previous


def enable_metrics(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Swap the no-op singleton for a live registry (idempotent) and return it."""
    global _active
    with _active_lock:
        if registry is None:
            registry = _active if isinstance(_active, MetricsRegistry) else MetricsRegistry()
        _active = registry
        return registry


def disable_metrics() -> None:
    """Restore the default no-op registry."""
    set_registry(NULL_REGISTRY)


def metrics_enabled() -> bool:
    return isinstance(_active, MetricsRegistry)


@contextmanager
def active_metrics(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Scoped enablement: install a registry, yield it, restore the previous one.

    >>> with active_metrics() as registry:
    ...     get_registry().counter("scoped.example").inc()
    ...     registry.counter("scoped.example").value
    1
    >>> metrics_enabled()
    False
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


# ------------------------------------------------------------- core counters


class CoreCounters:
    """Always-on process counters backing the library's invariants.

    These replace the module globals that used to leak across tests
    (``repro.index.snapshot._BUILD_CALLS``,
    ``repro.delta.refresh._REFRESH_CALLS`` / ``_REFRESH_REBUILDS``): same
    cost — a slotted integer attribute — but resettable in one place.  The
    compatibility readers (``build_call_count`` and friends) now read
    through here, so every existing delta-style assertion in the test suite
    works unchanged while the per-test isolation fixture calls
    :meth:`reset` between tests.
    """

    __slots__ = ("index_builds", "index_refreshes", "index_refresh_rebuilds")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.index_builds = 0
        self.index_refreshes = 0
        self.index_refresh_rebuilds = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "index_builds": self.index_builds,
            "index_refreshes": self.index_refreshes,
            "index_refresh_rebuilds": self.index_refresh_rebuilds,
        }

    def __repr__(self) -> str:
        return f"CoreCounters({self.as_dict()})"


CORE = CoreCounters()


# -------------------------------------------------------------------- parsing

_NAME_LINE = re.compile(r"^# NAME (?P<name>\S+)$")
_TYPE_LINE = re.compile(r"^# TYPE (?P<flat>\S+) (?P<kind>\S+)$")
_BUCKET_LINE = re.compile(r'^(?P<flat>\S+)_bucket\{le="(?P<le>[^"]+)"\} (?P<value>\S+)$')
_SCALAR_LINE = re.compile(r"^(?P<flat>\S+) (?P<value>\S+)$")


def parse_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Parse :meth:`MetricsRegistry.expose_text` back into the dump structure.

    The round-trip property ``parse_exposition(r.expose_text()) == r.dump()``
    is pinned by a hypothesis test — it is what makes the text exposition a
    faithful wire format rather than a lossy pretty-print.
    """
    out: Dict[str, Dict[str, object]] = {}
    name: Optional[str] = None
    kind: Optional[str] = None
    buckets: List[float] = []
    cumulative: List[int] = []

    def _flush_histogram(entry: Mapping[str, object]) -> Dict[str, object]:
        # De-cumulate: the exposition carries running totals (le-buckets);
        # the dump stores per-bucket counts plus the +inf tail.
        counts: List[int] = []
        previous = 0
        for total in cumulative[:-1]:  # the last line is +Inf
            counts.append(total - previous)
            previous = total
        counts.append(cumulative[-1] - previous)
        return {
            "kind": "histogram",
            "buckets": list(buckets),
            "counts": counts,
            "sum": entry["sum"],
            "count": entry["count"],
        }

    pending: Dict[str, object] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        matched = _NAME_LINE.match(line)
        if matched:
            name = matched.group("name")
            buckets, cumulative, pending, kind = [], [], {}, None
            continue
        matched = _TYPE_LINE.match(line)
        if matched:
            kind = matched.group("kind")
            continue
        if name is None or kind is None:
            raise ValueError(f"exposition line outside a metric block: {line!r}")
        matched = _BUCKET_LINE.match(line)
        if matched and kind == "histogram":
            le = matched.group("le")
            if le != "+Inf":
                buckets.append(float(le))
            cumulative.append(int(matched.group("value")))
            continue
        matched = _SCALAR_LINE.match(line)
        if not matched:
            raise ValueError(f"unparseable exposition line: {line!r}")
        flat, raw = matched.group("flat"), matched.group("value")
        value: Union[int, float] = float(raw) if ("." in raw or "e" in raw or "inf" in raw) else int(raw)
        if kind == "histogram":
            if flat.endswith("_sum"):
                pending["sum"] = value
            elif flat.endswith("_count"):
                pending["count"] = value
                out[name] = _flush_histogram(pending)
        else:
            out[name] = {"kind": kind, "value": value}
    return out
