"""Per-shard graph versions as one immutable vector.

Every cache in the library keys on :attr:`repro.graph.PropertyGraph.version`
— a *scalar* mutation counter, which is exactly right while one service owns
one graph.  A sharded fleet has **one counter per shard**, and collapsing
them into a scalar (a sum, a max, a hash) aliases distinct fleet states:
bumping shard A then rolling it back while shard B moves forward can land on
the same scalar as never touching either, and a cache keyed on that scalar
would happily serve a pre-delta answer for a post-delta fleet.  The
regression test in ``tests/test_serve_versions.py`` demonstrates the stale
read a collapsed key permits.

:class:`VersionVector` is the fix: a frozen tuple of per-shard counters that
is hashable (so it drops into :class:`repro.service.cache.ResultCache` keys
unchanged — the cache's version slot is deliberately opaque), comparable
component-wise, and stable to encode for the cross-process shared store
(:meth:`VersionVector.key_text`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from repro.utils.errors import ReproError

__all__ = ["VersionVector"]


@dataclass(frozen=True)
class VersionVector:
    """An immutable vector of per-shard graph mutation counters.

    The component order is the fleet's shard order (shard 0 first); two
    vectors from fleets of different sizes never compare equal.

    >>> v = VersionVector((3, 1, 4))
    >>> v.bump(1)
    VersionVector((3, 2, 4))
    >>> v == VersionVector((3, 1, 4)), v.key_text()
    (True, '3:1:4')
    """

    versions: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.versions, tuple):
            object.__setattr__(self, "versions", tuple(self.versions))
        for component in self.versions:
            if not isinstance(component, int):
                raise ReproError(
                    f"version vector components must be ints, got {component!r}"
                )

    # ------------------------------------------------------------ constructors

    @classmethod
    def of(cls, *versions: int) -> "VersionVector":
        return cls(tuple(versions))

    @classmethod
    def from_graphs(cls, graphs: Iterable) -> "VersionVector":
        """One component per graph, in iteration order."""
        return cls(tuple(graph.version for graph in graphs))

    # -------------------------------------------------------------- operations

    def bump(self, index: int, amount: int = 1) -> "VersionVector":
        """A new vector with component *index* advanced by *amount*."""
        if not 0 <= index < len(self.versions):
            raise ReproError(
                f"shard index {index} out of range for {len(self.versions)} shards"
            )
        return VersionVector(
            self.versions[:index]
            + (self.versions[index] + amount,)
            + self.versions[index + 1:]
        )

    def replace(self, index: int, version: int) -> "VersionVector":
        """A new vector with component *index* set to *version*."""
        if not 0 <= index < len(self.versions):
            raise ReproError(
                f"shard index {index} out of range for {len(self.versions)} shards"
            )
        return VersionVector(
            self.versions[:index] + (version,) + self.versions[index + 1:]
        )

    def dominates(self, other: "VersionVector") -> bool:
        """Component-wise ``>=`` (only defined for equal-length vectors)."""
        if len(self.versions) != len(other.versions):
            raise ReproError("cannot compare version vectors of different fleets")
        return all(a >= b for a, b in zip(self.versions, other.versions))

    def collapsed(self) -> int:
        """The scalar sum of the components.

        **This aliases**: distinct fleet states share a sum (that is the
        whole point of keeping the vector).  It exists for diagnostics and
        for the regression test that pins down why caches must key on the
        vector, never on a collapse of it.
        """
        return sum(self.versions)

    def key_text(self) -> str:
        """A stable, process-independent text encoding (shared-store keys)."""
        return ":".join(str(component) for component in self.versions)

    # --------------------------------------------------------------- protocols

    def __len__(self) -> int:
        return len(self.versions)

    def __iter__(self) -> Iterator[int]:
        return iter(self.versions)

    def __getitem__(self, index: int) -> int:
        return self.versions[index]

    def __repr__(self) -> str:
        return f"VersionVector({self.versions!r})"
