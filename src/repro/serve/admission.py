"""Admission control: the bounded, prioritised front door of the fleet.

A single :class:`~repro.service.server.QueryService` absorbs whatever its
callers submit — its pending list is unbounded, which is fine for one process
talking to itself and wrong for a serving tier fronting real traffic: under
overload an unbounded queue converts excess load into unbounded latency for
*everyone*.  :class:`AdmissionQueue` is the missing seam, placed exactly where
the dispatcher already batches:

* a **bound** on queued requests, with two overflow policies — ``"reject"``
  raises :class:`~repro.utils.errors.Overloaded` immediately (callers retry
  with backoff; the queue never lies about capacity), ``"block"`` parks the
  submitting thread until space frees (with an optional timeout, after which
  it too raises :class:`Overloaded`);
* **priorities**: smaller values drain first (0 is the default), FIFO within
  a priority class, so latency-sensitive traffic overtakes bulk traffic at
  the batch boundary without starving it — a drain takes *everything*
  admitted, ordered, not just the best class;
* **graceful drain**: :meth:`close` stops admissions instantly but leaves
  already-admitted requests for the dispatcher to finish — a promise made to
  every caller that got past the front door.

The queue is engine-agnostic (it holds opaque payloads); the router composes
it with in-flight dedup, which lives above the queue because dedup needs the
canonical fingerprint and the fleet's version vector — neither of which the
queue should know about.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Generic, List, Optional, Tuple, TypeVar

from repro.obs.metrics import get_registry
from repro.utils.errors import Overloaded, ReproError, ServiceError

__all__ = ["AdmissionConfig", "AdmissionStats", "AdmissionQueue"]

T = TypeVar("T")


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of one :class:`AdmissionQueue`.

    ``max_pending`` bounds admitted-but-undrained requests.  ``policy`` is
    ``"reject"`` (full queue ⇒ :class:`Overloaded` now) or ``"block"`` (full
    queue ⇒ wait for space; ``block_timeout`` seconds at most when set, then
    :class:`Overloaded`).  Validation is eager — a typo'd policy fails at
    construction, not first overload.
    """

    max_pending: int = 256
    policy: str = "reject"
    block_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_pending <= 0:
            raise ReproError("admission max_pending must be positive")
        if self.policy not in ("reject", "block"):
            raise ReproError(
                f"admission policy must be 'reject' or 'block', got {self.policy!r}"
            )
        if self.block_timeout is not None and self.block_timeout < 0:
            raise ReproError("admission block_timeout must be non-negative")


@dataclass
class AdmissionStats:
    """Lifetime counters of one queue (mirrored to obs when enabled).

    ``wait_seconds_total`` / ``wait_seconds_max`` accumulate the time
    payloads sat admitted-but-undrained (measured enqueue → drain), which is
    the queueing delay the serve tier adds before any matching work starts.
    """

    admitted: int = 0
    rejected: int = 0
    blocked: int = 0
    drained: int = 0
    high_water: int = 0
    wait_seconds_total: float = 0.0
    wait_seconds_max: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "blocked": self.blocked,
            "drained": self.drained,
            "high_water": self.high_water,
            "wait_seconds_total": self.wait_seconds_total,
            "wait_seconds_max": self.wait_seconds_max,
        }


class AdmissionQueue(Generic[T]):
    """A bounded priority queue with backpressure and graceful drain.

    Thread-safe.  Producers call :meth:`submit`; one consumer (the router's
    dispatcher) alternates :meth:`wait_for_work` / :meth:`drain` — drain
    empties the whole queue in priority order, which is what lets the
    dispatcher coalesce everything admitted since its last round into one
    batch.
    """

    def __init__(self, config: Optional[AdmissionConfig] = None) -> None:
        self.config = config or AdmissionConfig()
        self.stats = AdmissionStats()
        # Heap entries carry their enqueue perf-counter timestamp so drain
        # can account the queueing wait; the public drain shape is unchanged.
        self._heap: List[Tuple[int, int, float, T]] = []
        self._seq = 0
        self._lock = threading.Lock()
        # Signals space freed (blocked producers) and work queued (consumer).
        self._space = threading.Condition(self._lock)
        self._work = threading.Condition(self._lock)
        self._last_waits: List[float] = []
        self._closed = False

    # ------------------------------------------------------------- producers

    def submit(self, payload: T, priority: int = 0) -> None:
        """Admit *payload*, or raise :class:`Overloaded` per the policy.

        Raises :class:`ServiceError` once the queue is closed — closing is a
        hard stop for *new* work only.
        """
        registry = get_registry()
        with self._lock:
            if self._closed:
                raise ServiceError("admission queue is closed")
            if len(self._heap) >= self.config.max_pending:
                if self.config.policy == "reject":
                    self.stats.rejected += 1
                    if registry:
                        registry.counter("serve.admission.rejected").inc()
                    raise Overloaded(
                        f"admission queue full ({self.config.max_pending} pending)"
                    )
                self.stats.blocked += 1
                if registry:
                    registry.counter("serve.admission.blocked").inc()
                if not self._space.wait_for(
                    lambda: self._closed or len(self._heap) < self.config.max_pending,
                    timeout=self.config.block_timeout,
                ):
                    self.stats.rejected += 1
                    if registry:
                        registry.counter("serve.admission.rejected").inc()
                    raise Overloaded(
                        f"admission queue full after {self.config.block_timeout}s wait"
                    )
                if self._closed:
                    raise ServiceError("admission queue is closed")
            heapq.heappush(self._heap, (priority, self._seq, perf_counter(), payload))
            self._seq += 1
            self.stats.admitted += 1
            depth = len(self._heap)
            if depth > self.stats.high_water:
                self.stats.high_water = depth
            self._work.notify()
        if registry:
            registry.counter("serve.admission.admitted").inc()
            registry.gauge("serve.admission.depth").set(depth)

    # -------------------------------------------------------------- consumer

    def wait_for_work(self, timeout: Optional[float] = None) -> bool:
        """Block until something is queued or the queue is closed.

        Returns ``True`` when there is (possibly residual post-close) work or
        the queue closed — i.e. whenever the consumer should run another
        drain-and-decide cycle — and ``False`` only on timeout.
        """
        with self._lock:
            return self._work.wait_for(
                lambda: self._closed or bool(self._heap), timeout=timeout
            )

    def drain(self) -> List[Tuple[int, T]]:
        """Remove and return everything queued, as ``(priority, payload)``.

        Ordered by priority then admission order.  Wakes every producer
        blocked on space.  Queueing waits (enqueue → this drain) are
        accumulated into :attr:`stats` and the ``serve.admission.wait_seconds``
        histogram; :meth:`last_waits` exposes the drained batch's individual
        waits for the router's per-request accounting.
        """
        with self._lock:
            batch: List[Tuple[int, T]] = []
            waits: List[float] = []
            drained_at = perf_counter()
            while self._heap:
                priority, _seq, enqueued, payload = heapq.heappop(self._heap)
                batch.append((priority, payload))
                waits.append(drained_at - enqueued)
            if batch:
                self.stats.drained += len(batch)
                self.stats.wait_seconds_total += sum(waits)
                longest = max(waits)
                if longest > self.stats.wait_seconds_max:
                    self.stats.wait_seconds_max = longest
                self._last_waits = waits
                self._space.notify_all()
        if batch:
            registry = get_registry()
            if registry:
                registry.gauge("serve.admission.depth").set(0)
                histogram = registry.histogram("serve.admission.wait_seconds")
                for wait in waits:
                    histogram.observe(wait)
        return batch

    def last_waits(self) -> List[float]:
        """Per-payload queueing waits of the most recent non-empty drain,
        aligned with its returned batch order."""
        with self._lock:
            return list(self._last_waits)

    # ------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Refuse new admissions; already-admitted payloads remain drainable.

        Idempotent.  Wakes blocked producers (they raise
        :class:`ServiceError`) and the consumer (so it can run its final
        drain and exit).
        """
        with self._lock:
            self._closed = True
            self._space.notify_all()
            self._work.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def __repr__(self) -> str:
        return (
            f"AdmissionQueue(depth={len(self)}/{self.config.max_pending}, "
            f"policy={self.config.policy!r}, closed={self.closed})"
        )
