"""Graph shards: deterministic node-hash partitions with d-hop halos.

The scale-out tier (:mod:`repro.serve.router`) owns one
:class:`~repro.service.server.QueryService` per **shard**.  A shard is built
the same way the paper's d-hop preserving fragments are
(:mod:`repro.parallel.partition`), one level up the stack:

* every node of the source graph is **owned** by exactly one shard — by
  default via a deterministic content hash of the node id (stable across
  processes and runs, unlike :func:`hash` under ``PYTHONHASHSEED``), or via a
  caller-supplied partition;
* each shard's graph is the subgraph **induced on the d-hop undirected ball**
  of its owned nodes, so every owned focus candidate sees its complete
  radius-``d`` neighbourhood locally (the halo).  A pattern of radius at most
  ``d`` therefore matches an owned node on the shard graph iff it matches it
  on the union graph — the Lemma 9 argument of the paper, applied to
  graphs-within-a-fleet instead of fragments-within-a-graph.

Because owned sets partition the node universe, per-shard answers restricted
to owned nodes merge disjointly into exactly the union-graph answer — the
byte-identity oracle the router's tests pin down.

Delta routing lives here too: :func:`route_delta` decides which shards an
applied :class:`~repro.delta.GraphDelta` can affect (conservatively, via the
d-hop ball of the touched nodes) and produces, per affected shard, the exact
:class:`~repro.delta.GraphDelta` that moves the shard graph to the new
induced ball — computed with :func:`repro.delta.ops.graph_diff`, so each
shard's :class:`QueryService` maintains itself through its ordinary
``apply_delta`` path (index refresh, partition maintenance, cache migration)
and bumps its *own* version exactly once.  Untouched shards do not bump —
that is what makes the fleet's :class:`~repro.serve.versions.VersionVector`
informative.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.delta.ops import GraphDelta, graph_diff
from repro.graph.digraph import PropertyGraph
from repro.utils.errors import ReproError

__all__ = [
    "GraphShard",
    "hash_assign",
    "build_shards",
    "undirected_ball",
    "affected_shards",
    "shard_subdelta",
]

NodeId = Hashable


def hash_assign(node: NodeId, num_shards: int) -> int:
    """The deterministic default owner of *node* among *num_shards* shards.

    Keys on a CRC of a typed repr of the node id, so the assignment is stable
    across processes, interpreter restarts and ``PYTHONHASHSEED`` — two
    fleets built from the same graph in different processes own identical
    node sets, which is what makes the cross-process shared result cache
    (keyed on the fleet's version vector) safe to share.
    """
    text = f"{type(node).__name__}:{node!r}"
    return zlib.crc32(text.encode("utf-8")) % num_shards


def undirected_ball(graph: PropertyGraph, sources: Iterable[NodeId], hops: int) -> Set[NodeId]:
    """All nodes within *hops* undirected hops of any of *sources*.

    A multi-source frontier BFS (each node expanded once), so building every
    shard's halo costs O(|ball|) per shard, not O(|owned| · |ball|).
    """
    seen: Set[NodeId] = set(sources)
    frontier: List[NodeId] = list(seen)
    for _ in range(hops):
        if not frontier:
            break
        next_frontier: List[NodeId] = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return seen


class GraphShard:
    """One shard: its owned nodes and the ball-induced shard graph.

    ``graph`` is an independent :class:`PropertyGraph` (its own adjacency,
    its own mutation counter) — the shard's :class:`QueryService` owns it
    outright and maintains its compiled indexes, partitions and caches
    against it.  The invariant the delta-routing path preserves (and the
    shard test suite asserts after arbitrary update streams):

        ``shard.graph == induced(union, undirected_ball(shard.owned, d))``
    """

    __slots__ = ("shard_id", "owned", "graph", "d")

    def __init__(self, shard_id: int, owned: Set[NodeId], graph: PropertyGraph, d: int) -> None:
        self.shard_id = shard_id
        self.owned = set(owned)
        self.graph = graph
        self.d = d

    def __repr__(self) -> str:
        return (
            f"GraphShard(id={self.shard_id}, owned={len(self.owned)}, "
            f"nodes={self.graph.num_nodes}, d={self.d})"
        )


def _assignment_from_partition(
    graph: PropertyGraph,
    partition: object,
    num_shards: int,
) -> Dict[NodeId, int]:
    """Normalise a supplied partition into a node → shard-index map."""
    assignment: Dict[NodeId, int] = {}
    if isinstance(partition, Mapping):
        items = partition.items()
        for node, shard_id in items:
            if not isinstance(shard_id, int) or not 0 <= shard_id < num_shards:
                raise ReproError(
                    f"partition assigns node {node!r} to invalid shard {shard_id!r}"
                )
            assignment[node] = shard_id
    else:
        for shard_id, nodes in enumerate(partition):  # sequence of node sets
            if shard_id >= num_shards:
                raise ReproError("partition has more groups than num_shards")
            for node in nodes:
                if node in assignment:
                    raise ReproError(f"node {node!r} appears in two partition groups")
                assignment[node] = shard_id
    for node in graph.nodes():
        if node not in assignment:
            raise ReproError(f"partition does not cover node {node!r}")
    return assignment


def build_shards(
    graph: PropertyGraph,
    num_shards: int,
    d: int = 2,
    partition: Optional[object] = None,
) -> Tuple[List[GraphShard], Callable[[NodeId], int]]:
    """Shard *graph* into *num_shards* d-hop preserving shards.

    Returns ``(shards, assign)`` where ``assign`` maps any node id — present
    or future — to its owning shard index (hash-based for nodes outside a
    supplied partition, so inserted nodes always have a deterministic owner).
    """
    if num_shards <= 0:
        raise ReproError("num_shards must be positive")
    if d < 1:
        raise ReproError("shard halo radius d must be at least 1")

    if partition is None:
        fixed: Dict[NodeId, int] = {}
    else:
        fixed = _assignment_from_partition(graph, partition, num_shards)

    def assign(node: NodeId) -> int:
        shard_id = fixed.get(node)
        if shard_id is None:
            return hash_assign(node, num_shards)
        return shard_id

    owned_sets: List[Set[NodeId]] = [set() for _ in range(num_shards)]
    for node in graph.nodes():
        owned_sets[assign(node)].add(node)

    shards: List[GraphShard] = []
    for shard_id, owned in enumerate(owned_sets):
        ball = undirected_ball(graph, owned, d) if owned else set()
        shard_graph = graph.induced_subgraph(ball, name=f"{graph.name}#shard{shard_id}")
        shards.append(GraphShard(shard_id, owned, shard_graph, d))
    return shards, assign


# --------------------------------------------------------------------------
# Delta routing
# --------------------------------------------------------------------------


def affected_shards(
    union_graph: PropertyGraph,
    shards: Sequence[GraphShard],
    delta: GraphDelta,
    d: int,
) -> List[GraphShard]:
    """The shards an already-applied structural *delta* may affect.

    Conservative and sound: a shard's ball-induced graph can change only if
    (a) the batch touched a node that was **inside** the shard graph (covers
    every deletion and every ball shrink — a ball only shrinks when an edge
    inside it disappears), or (b) a touched node now lies within ``d``
    undirected hops of one of the shard's owned nodes in the post-delta
    union graph (covers every insertion that grows the ball).  Shards
    outside both sets keep their graph byte-identical and — crucially for
    the version vector — never bump.
    """
    touched = delta.touched_nodes()
    surviving = {node for node in touched if union_graph.has_node(node)}
    reach = undirected_ball(union_graph, surviving, d) if surviving else set()
    affected: List[GraphShard] = []
    for shard in shards:
        if not shard.owned and not any(node in shard.graph for node in touched):
            continue
        if (
            any(node in shard.graph for node in touched)
            or not reach.isdisjoint(shard.owned)
        ):
            affected.append(shard)
    return affected


def shard_subdelta(
    union_graph: PropertyGraph,
    shard: GraphShard,
    d: int,
) -> GraphDelta:
    """The exact batch moving *shard*'s graph to the post-delta induced ball.

    Call after the union graph mutated (and after the shard's ``owned`` set
    absorbed node inserts/deletes).  The returned delta may be empty — the
    conservative :func:`affected_shards` screen admits shards whose induced
    graph turns out identical; an empty batch applied through
    :meth:`QueryService.apply_delta` is a no-op that does not bump the shard
    version.
    """
    ball = undirected_ball(union_graph, shard.owned, d) if shard.owned else set()
    target = union_graph.induced_subgraph(ball, name=shard.graph.name)
    return graph_diff(shard.graph, target)
