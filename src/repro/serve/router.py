"""The shard router: one serving façade over a fleet of ``QueryService``\\ s.

:class:`ShardedService` is layer 8's entry point.  It owns the **union
graph** and N :class:`~repro.service.server.QueryService` instances, one per
d-hop preserving shard (:mod:`repro.serve.shards`), and keeps three promises:

**Byte-identity.**  For any pattern of radius ≤ d, the merged answer —
the union over shards of (shard answer ∩ shard-owned nodes) — equals the
answer a single ``QueryService`` computes on the union graph, byte for byte.
Owned sets partition the node universe and each shard graph preserves every
owned node's radius-d neighbourhood, so restriction-then-union is exact (the
paper's fragment argument, one level up).  The hypothesis suite pins this
against the single-service oracle, answers and summed work counters both.

**Version-vector caching.**  The router's L1 :class:`ResultCache` and the
optional cross-process L2 (:mod:`repro.serve.shared_cache`) key on the
fleet's :class:`~repro.serve.versions.VersionVector` — never a collapse of
it.  A delta bumps only the shards it reaches, the vector moves, and every
pre-delta entry becomes unreachable; untouched shards keep their own warm
caches and carried-forward entries, so the recompute after a local delta is
mostly shard-local cache hits.

**Bounded admission.**  :meth:`submit` goes through an
:class:`~repro.serve.admission.AdmissionQueue` (reject-or-block backpressure,
priorities, graceful drain) and deduplicates in-flight work by
``(fingerprint, options key, version vector)`` — concurrent identical
queries share one future and one fan-out.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, FrozenSet, Hashable, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.delta.ops import GraphDelta, apply_delta as apply_graph_delta
from repro.graph.digraph import PropertyGraph
from repro.matching.qmatch import QMatch
from repro.obs.explain import ExplainReport, StatsRegistry, build_report
from repro.obs.flight import FlightRecorder
from repro.obs.introspect import ServiceIntrospection
from repro.obs.metrics import get_registry
from repro.obs.trace import TraceContext, get_tracer, span
from repro.parallel.coordinator import PQMatch
from repro.parallel.worker import options_key_text
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.plan.cache import PlanCache
from repro.serve.admission import AdmissionConfig, AdmissionQueue
from repro.serve.shards import (
    GraphShard,
    affected_shards,
    build_shards,
    shard_subdelta,
    undirected_ball,
)
from repro.serve.shared_cache import SharedResultCache
from repro.serve.versions import VersionVector
from repro.service.cache import ResultCache
from repro.service.patterns import CanonicalPattern, canonicalize
from repro.service.server import QueryService, ServiceResult
from repro.utils.counters import WorkCounter
from repro.utils.errors import ReproError, ServiceError
from repro.utils.timing import Timer

__all__ = ["ShardedService", "RouterStats"]


class _FleetToken:
    """Stands in for "the graph" in the router's version-aware caches.

    :class:`ResultCache` keys on ``id(graph)`` and compares stored version
    slots against ``graph.version``; the router's "graph" is the whole fleet,
    whose version is the :class:`VersionVector` of its shard graphs.  This
    token gives the cache exactly the two things it reads — a stable identity
    and a ``.version`` — without pretending to be a graph anywhere else.
    """

    __slots__ = ("_fleet",)

    def __init__(self, fleet: "ShardedService") -> None:
        self._fleet = fleet

    @property
    def version(self) -> VersionVector:
        return self._fleet.version_vector

    def __repr__(self) -> str:
        return f"_FleetToken({self.version!r})"


@dataclass
class RouterStats:
    """Lifetime counters of one :class:`ShardedService`."""

    served: int = 0
    batches: int = 0
    fanout_rounds: int = 0
    computed: int = 0
    deduplicated: int = 0
    submitted: int = 0
    shared_hits: int = 0
    deltas_applied: int = 0
    shards_touched: int = 0
    shards_skipped: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "served": self.served,
            "batches": self.batches,
            "fanout_rounds": self.fanout_rounds,
            "computed": self.computed,
            "deduplicated": self.deduplicated,
            "submitted": self.submitted,
            "shared_hits": self.shared_hits,
            "deltas_applied": self.deltas_applied,
            "shards_touched": self.shards_touched,
            "shards_skipped": self.shards_skipped,
        }


class _Request(NamedTuple):
    """One queued request.

    ``context`` is the submitter's :func:`~repro.obs.trace.current_context`
    (captured inside its ``serve.submit`` span) so the dispatcher can parent
    the fan-out work under the submitting thread's tree; ``enqueued_wall``
    anchors the synthetic admission-wait span on the wall clock.
    """

    pattern: QuantifiedGraphPattern
    form: CanonicalPattern
    key: Hashable
    future: "Future[ServiceResult]"
    context: TraceContext
    enqueued_wall: float


class ShardedService:
    """Route quantified-pattern queries across a fleet of graph shards.

    Parameters
    ----------
    graph:
        The union graph.  The router owns it for writes: mutate it only
        through :meth:`apply_delta`, which keeps every shard graph equal to
        its induced d-hop ball of the (updated) union.
    num_shards / d / partition:
        Forwarded to :func:`repro.serve.shards.build_shards`.  ``d`` bounds
        the radius of every servable pattern.
    coordinator_factory:
        ``shard -> PQMatch`` for custom per-shard backends; defaults to a
        serial 2-worker coordinator per shard.
    shared_cache:
        A :class:`SharedResultCache`, or a path (str) to open one — opened
        handles are owned (closed by :meth:`close`), passed handles are
        borrowed.  ``None`` disables the L2.
    admission:
        :class:`AdmissionConfig` for the :meth:`submit` front door.

    >>> from repro.graph.generators import small_world_social_graph
    >>> from repro.datasets.workloads import workload_patterns
    >>> graph = small_world_social_graph(40, 90, seed=11)
    >>> queries = workload_patterns(graph, count=2, seed=7)
    >>> with ShardedService(graph, num_shards=3) as fleet:
    ...     first = fleet.evaluate(queries[0])
    ...     again = fleet.evaluate(queries[0])
    >>> first.answer == again.answer, first.cached, again.cached
    (True, False, True)
    """

    def __init__(
        self,
        graph: PropertyGraph,
        num_shards: int = 2,
        d: int = 2,
        partition: Optional[object] = None,
        coordinator_factory: Optional[Callable[[GraphShard], PQMatch]] = None,
        cache_capacity: int = 1024,
        admission: Optional[AdmissionConfig] = None,
        shared_cache: Optional[object] = None,
        name: str = "ShardedService",
        service_kwargs: Optional[Dict[str, object]] = None,
        slow_query_threshold: Optional[float] = None,
        flight_capacity: int = 256,
        stats_registry_capacity: int = 256,
    ) -> None:
        self.graph = graph
        self.name = name
        self.d = d
        self.stats = RouterStats()
        self.shards, self._assign = build_shards(graph, num_shards, d, partition)
        self.services: List[QueryService] = []
        kwargs = dict(service_kwargs or {})
        for shard in self.shards:
            if coordinator_factory is not None:
                coordinator = coordinator_factory(shard)
            else:
                coordinator = PQMatch(num_workers=2, d=d, engine=QMatch())
            self.services.append(
                QueryService(
                    shard.graph,
                    coordinator=coordinator,
                    cache_capacity=cache_capacity,
                    name=f"{name}-shard{shard.shard_id}",
                    **kwargs,
                )
            )
        options_keys = {service._options_key for service in self.services}
        if len(options_keys) != 1:
            raise ServiceError(
                "all shard services must share one engine configuration; "
                f"got {sorted(map(repr, options_keys))}"
            )
        self._options_key = next(iter(options_keys))
        self._options_text = options_key_text(self._options_key)

        self.cache = ResultCache(cache_capacity)
        self._token = _FleetToken(self)
        self._owns_shared = isinstance(shared_cache, str)
        self.shared: Optional[SharedResultCache] = (
            SharedResultCache(shared_cache) if self._owns_shared else shared_cache
        )

        # Fleet-level request introspection (slow fleet queries carry the
        # serve-tier fields: fan-out count, cache route, admission wait),
        # flight recorder, and the per-fingerprint estimated-vs-observed
        # registry (epoch key: the fleet version vector's text form).
        self.introspection = ServiceIntrospection(
            slow_query_threshold=slow_query_threshold
        )
        self.flight = FlightRecorder(flight_capacity)
        self.stats_registry = StatsRegistry(stats_registry_capacity)
        # fingerprint -> representative pattern (for explain-by-fingerprint),
        # plus a small plan cache so explain never recompiles per call.
        self._patterns: "OrderedDict[str, QuantifiedGraphPattern]" = OrderedDict()
        self.plans = PlanCache(64)
        if self.shared is not None:
            # Degraded L2 reads land in the flight recorder as they happen —
            # the listener keeps SharedResultCache free of any obs dependency.
            flight = self.flight
            self.shared.add_degraded_listener(
                lambda reason: flight.record(
                    "degraded", source="shared_cache", fleet=name, reason=reason
                )
            )

        self.admission = AdmissionQueue(admission or AdmissionConfig())
        self._canonical_memo: "weakref.WeakKeyDictionary[QuantifiedGraphPattern, CanonicalPattern]" = (
            weakref.WeakKeyDictionary()
        )
        # Serialises fan-out rounds and delta application: a served answer
        # reflects the fleet strictly before or strictly after any batch.
        self._evaluate_lock = threading.RLock()
        # (fingerprint, options key, version vector) -> shared in-flight
        # future.  Guarded by its own lock so submit() never blocks behind a
        # running fan-out round.
        self._inflight: Dict[Hashable, "Future[ServiceResult]"] = {}
        self._inflight_lock = threading.Lock()
        self._dispatcher: Optional[threading.Thread] = None
        self._dispatcher_lock = threading.Lock()
        self._closed = False
        # Per-shard WorkCounter of the most recent fan-out round, for the
        # per-slot contribution accounting in bench/introspection.
        self.last_round_counters: Dict[int, WorkCounter] = {}

    # ------------------------------------------------------------- properties

    @property
    def version_vector(self) -> VersionVector:
        """The fleet's current version: one component per shard graph."""
        return VersionVector.from_graphs(shard.graph for shard in self.shards)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    # -------------------------------------------------------------- one query

    def evaluate(self, pattern: QuantifiedGraphPattern) -> ServiceResult:
        """Serve one pattern (L1 → L2 → coalesced fan-out merge)."""
        return self.evaluate_many([pattern])[0]

    def evaluate_many(
        self, patterns: Sequence[QuantifiedGraphPattern]
    ) -> List[ServiceResult]:
        """Serve a batch, in input order; one fan-out round for all misses."""
        with self._evaluate_lock:
            if self._closed:
                raise ServiceError(f"{self.name} is closed")
            return self._evaluate_batch(list(patterns))

    def _serve_batch(
        self,
        patterns: Sequence[QuantifiedGraphPattern],
        waits: Optional[List[float]] = None,
    ) -> List[ServiceResult]:
        """Closed-check-free batch path for the dispatcher's graceful drain."""
        with self._evaluate_lock:
            return self._evaluate_batch(list(patterns), waits=waits)

    def _canonical(self, pattern: QuantifiedGraphPattern) -> CanonicalPattern:
        form = self._canonical_memo.get(pattern)
        if form is None:
            form = canonicalize(pattern)
            try:
                self._canonical_memo[pattern] = form
            except TypeError:
                pass
        # Representative registry for explain-by-fingerprint, LRU-bounded by
        # the L1 capacity (same discipline as QueryService._patterns).
        self._patterns[form.fingerprint] = pattern
        self._patterns.move_to_end(form.fingerprint)
        while len(self._patterns) > self.cache.capacity:
            self._patterns.popitem(last=False)
        return form

    def _evaluate_batch(
        self,
        patterns: List[QuantifiedGraphPattern],
        waits: Optional[List[float]] = None,
    ) -> List[ServiceResult]:
        if not patterns:
            return []
        # Read ONCE per batch: answers computed below are filed under this
        # vector even though nothing can move it mid-batch (apply_delta takes
        # the same lock) — the single-service discipline, kept on principle.
        vector = self.version_vector
        version_text = vector.key_text()
        results: List[Optional[ServiceResult]] = [None] * len(patterns)
        missing: Dict[str, Tuple[QuantifiedGraphPattern, List[int]]] = {}
        # Per-request route + service time: an L1 hit costs its lookup, an L2
        # hit adds the sqlite read, a computed request adds the fan-out round
        # it shared — the serve-tier columns of the slow-query log.
        routes: List[str] = ["fanout"] * len(patterns)
        request_elapsed: List[float] = [0.0] * len(patterns)
        with span("serve.batch", size=len(patterns), shards=self.num_shards), Timer() as timer:
            for position, pattern in enumerate(patterns):
                lookup_started = perf_counter()
                form = self._canonical(pattern)
                answer = self.cache.lookup(
                    self._token, form.fingerprint, self._options_key, version=vector
                )
                route = "l1"
                if answer is None and self.shared is not None:
                    answer = self.shared.lookup(
                        form.fingerprint, self._options_text, version_text
                    )
                    if answer is not None:
                        # Promote to L1 so the next hit skips sqlite.
                        answer = self.cache.store(
                            self._token,
                            form.fingerprint,
                            answer,
                            self._options_key,
                            version=vector,
                        )
                        self.stats.shared_hits += 1
                        route = "l2"
                request_elapsed[position] = perf_counter() - lookup_started
                if answer is not None:
                    routes[position] = route
                    results[position] = ServiceResult(
                        pattern=pattern.name,
                        fingerprint=form.fingerprint,
                        answer=answer,
                        cached=True,
                    )
                else:
                    entry = missing.setdefault(form.fingerprint, (pattern, []))
                    entry[1].append(position)

            if missing:
                unique = [
                    (fingerprint, pattern)
                    for fingerprint, (pattern, _) in missing.items()
                ]
                fanout_started = perf_counter()
                answers, counters = self._fan_out(unique)
                fanout_elapsed = perf_counter() - fanout_started
                for fingerprint, (pattern, positions) in missing.items():
                    answer = self.cache.store(
                        self._token,
                        fingerprint,
                        answers[fingerprint],
                        self._options_key,
                        version=vector,
                    )
                    if self.shared is not None:
                        self.shared.store(
                            fingerprint, self._options_text, version_text, answer
                        )
                    self.stats_registry.record(
                        fingerprint,
                        pattern.name,
                        version_text,
                        counter=counters[fingerprint],
                        answer_size=len(answer),
                        elapsed=fanout_elapsed,
                    )
                    for position in positions:
                        request_elapsed[position] += fanout_elapsed
                        results[position] = ServiceResult(
                            pattern=patterns[position].name,
                            fingerprint=fingerprint,
                            answer=answer,
                            cached=False,
                            counter=counters[fingerprint],
                        )
                self.stats.computed += len(missing)

        self.stats.served += len(patterns)
        self.stats.batches += 1
        elapsed = timer.elapsed
        batch_size = len(patterns)
        flight = self.flight
        for position, result in enumerate(results):
            admission_wait = waits[position] if waits is not None else 0.0
            cache_route = routes[position]
            shard_fanout = 0 if result.cached else self.num_shards
            slow = self.introspection.observe(
                fingerprint=result.fingerprint,
                pattern_name=result.pattern,
                elapsed=request_elapsed[position],
                cached=result.cached,
                counter=result.counter,
                batch_size=batch_size,
                shard_fanout=shard_fanout,
                cache_route=cache_route,
                admission_wait=admission_wait,
            )
            if flight and not result.cached:
                # Computed-work grain only: cache hits stay off the recorder
                # so the default hot path costs two falsy checks, not an event.
                flight.record(
                    "query",
                    fleet=self.name,
                    fingerprint=result.fingerprint,
                    pattern=result.pattern,
                    cached=result.cached,
                    cache_route=cache_route,
                    shard_fanout=shard_fanout,
                    elapsed=request_elapsed[position],
                    batch_size=batch_size,
                    admission_wait=admission_wait,
                )
            if flight and slow is not None:
                flight.record("slow_query", fleet=self.name, **slow.as_dict())
        registry = get_registry()
        if registry:
            registry.counter("serve.batches").inc()
            registry.counter("serve.served").inc(batch_size)
            registry.histogram("serve.batch_seconds").observe(elapsed)
        return [
            ServiceResult(
                pattern=result.pattern,
                fingerprint=result.fingerprint,
                answer=result.answer,
                cached=result.cached,
                elapsed=elapsed,
                counter=result.counter,
            )
            for result in results
        ]

    def _fan_out(
        self, unique: List[Tuple[str, QuantifiedGraphPattern]]
    ) -> Tuple[Dict[str, FrozenSet], Dict[str, WorkCounter]]:
        """One coalesced round: every missing pattern to every shard, merged.

        Each shard service receives the whole miss list as ONE batch (its own
        dispatch coalescing and plan/result caches do the rest), so a router
        round costs one executor round per shard, not per pattern.  Per
        pattern, the merged answer is the union of each shard's answer
        restricted to its owned nodes, and the merged counter is the sum of
        the per-shard counters that actually computed (a shard serving its
        slice from its local cache contributes no fresh work).
        """
        for _, pattern in unique:
            radius = pattern.radius()
            if radius > self.d:
                raise ServiceError(
                    f"pattern {pattern.name!r} has radius {radius} > shard halo "
                    f"d={self.d}; rebuild the fleet with a larger d"
                )
        patterns = [pattern for _, pattern in unique]
        self.stats.fanout_rounds += 1
        round_counters: Dict[int, WorkCounter] = {}
        with span("serve.fanout", patterns=len(unique), shards=self.num_shards):
            per_shard = [service.evaluate_many(patterns) for service in self.services]

        answers: Dict[str, FrozenSet] = {}
        counters: Dict[str, WorkCounter] = {}
        for index, (fingerprint, _pattern) in enumerate(unique):
            merged: Set[Hashable] = set()
            merged_counter = WorkCounter()
            for shard, shard_results in zip(self.shards, per_shard):
                shard_result = shard_results[index]
                merged |= shard_result.answer & shard.owned
                if shard_result.counter is not None:
                    merged_counter.merge(shard_result.counter)
                    round_counters.setdefault(shard.shard_id, WorkCounter()).merge(
                        shard_result.counter
                    )
            answers[fingerprint] = frozenset(merged)
            counters[fingerprint] = merged_counter
        self.last_round_counters = round_counters
        return answers, counters

    # ------------------------------------------------------------- submission

    def submit(
        self, pattern: QuantifiedGraphPattern, priority: int = 0
    ) -> "Future[ServiceResult]":
        """Admit one query; returns a future (possibly a shared one).

        The request passes admission control (:class:`Overloaded` under the
        reject policy when the queue is full) and in-flight dedup: a query
        whose ``(fingerprint, options, version vector)`` is already queued or
        being fanned out rides the existing future — one computation, many
        waiters.  Note the flip side: cancelling a deduplicated future
        cancels it for every rider, exactly like coalesced cache fills.
        Smaller ``priority`` values drain first.
        """
        if self.admission.closed:
            raise ServiceError(f"{self.name} is closed")
        with span("serve.submit", fleet=self.name, pattern=pattern.name) as submit_span:
            form = self._canonical(pattern)
            key = (form.fingerprint, self._options_key, self.version_vector)
            future: "Future[ServiceResult]" = Future()
            with self._inflight_lock:
                existing = self._inflight.get(key)
                if existing is not None and not existing.done():
                    self.stats.deduplicated += 1
                    registry = get_registry()
                    if registry:
                        registry.counter("serve.inflight.deduplicated").inc()
                    submit_span.annotate(deduplicated=True)
                    return existing
                self._inflight[key] = future
            # Captured inside the submit span: the dispatcher parents its
            # admission-wait and serve.batch spans under this submit.
            context = get_tracer().current_context()
            request = _Request(pattern, form, key, future, context, time.time())
            try:
                self.admission.submit(request, priority)
            except BaseException:
                with self._inflight_lock:
                    if self._inflight.get(key) is future:
                        del self._inflight[key]
                raise
            self._ensure_dispatcher()
            self.stats.submitted += 1
            return future

    def _ensure_dispatcher(self) -> None:
        with self._dispatcher_lock:
            if self._dispatcher is None or not self._dispatcher.is_alive():
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    name=f"{self.name}-dispatcher",
                    daemon=True,
                )
                self._dispatcher.start()

    def _release_inflight(self, key: Hashable, future: "Future[ServiceResult]") -> None:
        with self._inflight_lock:
            if self._inflight.get(key) is future:
                del self._inflight[key]

    def _dispatch_loop(self) -> None:
        while True:
            self.admission.wait_for_work()
            batch = self.admission.drain()
            if not batch:
                if self.admission.closed:
                    return
                continue
            drain_waits = self.admission.last_waits()
            claimed: List[_Request] = []
            claimed_waits: List[float] = []
            for (_priority, request), wait in zip(batch, drain_waits):
                if request.future.set_running_or_notify_cancel():
                    claimed.append(request)
                    claimed_waits.append(wait)
                else:
                    self._release_inflight(request.key, request.future)
            if not claimed:
                continue
            tracer = get_tracer()
            if tracer.enabled:
                # Synthetic, pre-measured: enqueue → claim, parented under
                # each submitter's serve.submit span so one fleet query is
                # one connected tree even though the drain coalesced many.
                for request, wait in zip(claimed, claimed_waits):
                    tracer.record_span(
                        "serve.admission.wait",
                        start=request.enqueued_wall,
                        wall=wait,
                        context=request.context,
                        pattern=request.pattern.name,
                    )
            patterns = [request.pattern for request in claimed]
            try:
                # The coalesced batch's spans parent under the oldest claimed
                # request (its submit reached admission first); riders keep
                # their submit + wait spans and share the served answer.
                with tracer.attach(claimed[0].context):
                    served = self._serve_batch(patterns, waits=claimed_waits)
            except BaseException:
                # Per-request isolation, same discipline as QueryService: one
                # caller's invalid pattern must not fail coalesced strangers.
                for request, wait in zip(claimed, claimed_waits):
                    try:
                        with tracer.attach(request.context):
                            result = self._serve_batch(
                                [request.pattern], waits=[wait]
                            )[0]
                    except BaseException as error:
                        if not request.future.done():
                            request.future.set_exception(error)
                    else:
                        if not request.future.done():
                            request.future.set_result(result)
                    finally:
                        self._release_inflight(request.key, request.future)
            else:
                for request, result in zip(claimed, served):
                    if not request.future.done():
                        request.future.set_result(result)
                    self._release_inflight(request.key, request.future)

    # ----------------------------------------------------------------- updates

    def apply_delta(self, delta: GraphDelta) -> GraphDelta:
        """Apply one batch to the union graph, routed to the shards it reaches.

        1. the union graph mutates once (one scalar bump there);
        2. ownership absorbs node inserts/deletes (hash or partition
           assignment — deterministic, so every process agrees);
        3. the conservatively-affected shards
           (:func:`repro.serve.shards.affected_shards`) each receive the
           exact sub-delta that moves their graph to the new induced ball,
           through their own :meth:`QueryService.apply_delta` — index
           refresh, partition maintenance and shard-local cache
           carry-forward all included.  **Unaffected shards do not bump**,
           which is what keeps their component of the version vector — and
           every cache entry keyed under it — warm;
        4. attribute-only writes propagate to every shard graph holding the
           node (no version bumps anywhere, matching semantics never read
           attributes).

        Serialises with the fan-out path, so every served answer is strictly
        pre- or strictly post-batch.  Returns the union-graph inverse.
        """
        with self._evaluate_lock, span(
            "serve.delta", fleet=self.name, size=delta.size
        ) as delta_span:
            if self._closed:
                raise ServiceError(f"{self.name} is closed")
            inverse = apply_graph_delta(self.graph, delta)
            affected_ids: Set[int] = set()
            touched = 0
            if delta.is_structural():
                for node, _label, _attrs in delta.node_inserts:
                    self.shards[self._assign(node)].owned.add(node)
                for node in delta.node_deletes:
                    for shard in self.shards:
                        shard.owned.discard(node)
                affected = affected_shards(self.graph, self.shards, delta, self.d)
                affected_ids = {shard.shard_id for shard in affected}
                touched = len(affected)
                for shard in affected:
                    sub = shard_subdelta(self.graph, shard, self.d)
                    if not sub.is_empty():
                        # The shard's own service.delta span (refresh-vs-
                        # rebuild outcome included) nests under this one.
                        with span("serve.delta.shard", shard=shard.shard_id):
                            self.services[shard.shard_id].apply_delta(sub)
                self.stats.shards_touched += touched
                self.stats.shards_skipped += self.num_shards - touched
                registry = get_registry()
                if registry:
                    registry.counter("serve.delta.shards_touched").inc(touched)
                    registry.counter("serve.delta.shards_skipped").inc(
                        self.num_shards - touched
                    )
            if delta.attr_sets:
                for shard in self.shards:
                    if shard.shard_id in affected_ids:
                        continue  # graph_diff already carried the attr changes
                    subset = tuple(
                        (node, attr_key, value)
                        for node, attr_key, value in delta.attr_sets
                        if shard.graph.has_node(node)
                    )
                    if subset:
                        self.services[shard.shard_id].apply_delta(
                            GraphDelta(attr_sets=subset)
                        )
            self.stats.deltas_applied += 1
            skipped = self.num_shards - touched if delta.is_structural() else 0
            delta_span.annotate(touched=touched, skipped=skipped)
            self.flight.record(
                "delta",
                fleet=self.name,
                size=delta.size,
                structural=delta.is_structural(),
                shards_touched=touched,
                shards_skipped=skipped,
                version=self.version_vector.key_text(),
            )
            return inverse

    # ---------------------------------------------------------------- explain

    def explain(
        self,
        query,
        analyze: bool = False,
        analyze_limit: Optional[int] = None,
    ) -> ExplainReport:
        """EXPLAIN (ANALYZE) one query against the **union graph**.

        Same contract as :meth:`QueryService.explain` — *query* is a pattern
        or a served fingerprint, estimates come from the union graph's
        cardinality model, traffic observations from the fleet's
        :class:`~repro.obs.explain.StatsRegistry` (epoch key: the version
        vector's text form).  ``analyze=True`` re-enumerates on the union
        graph, which is exactly what the fleet's merged answer reproduces.
        """
        with self._evaluate_lock:
            if self._closed:
                raise ReproError(f"{self.name} is closed")
            if isinstance(query, str):
                pattern = self._patterns.get(query)
                if pattern is None:
                    raise ReproError(
                        f"{self.name} has no pattern registered for "
                        f"fingerprint {query!r}"
                    )
            else:
                pattern = query
            form = self._canonical(pattern)
            fingerprint = form.fingerprint
            plan = self.plans.plan_for(
                self.graph, fingerprint, self._options_key, pattern, form=form
            )
            return build_report(
                plan,
                self.graph,
                pattern=pattern,
                traffic=self.stats_registry.observed(fingerprint),
                analyze=analyze,
                analyze_limit=analyze_limit,
            )

    def check_invariants(self) -> None:
        """Assert the fleet's structural invariants (test/debug helper).

        Ownership partitions the union's nodes; every shard graph equals the
        union's induced subgraph on the d-hop ball of its owned set.  Raises
        :class:`ServiceError` on any violation.
        """
        union_nodes = set(self.graph.nodes())
        seen: Set[Hashable] = set()
        for shard in self.shards:
            overlap = seen & shard.owned
            if overlap:
                raise ServiceError(f"nodes owned twice: {sorted(map(repr, overlap))[:5]}")
            seen |= shard.owned
            ball = (
                undirected_ball(self.graph, shard.owned, self.d)
                if shard.owned
                else set()
            )
            expected = self.graph.induced_subgraph(ball, name=shard.graph.name)
            if shard.graph != expected:
                raise ServiceError(
                    f"shard {shard.shard_id} graph drifted from its induced ball"
                )
        if seen != union_nodes:
            raise ServiceError("ownership does not cover the union graph")

    # -------------------------------------------------------------- telemetry

    def stats_snapshot(self) -> Dict[str, float]:
        """Router + admission + cache counters, flat (bench/figure friendly)."""
        merged: Dict[str, float] = {
            f"cache_{key}": value for key, value in self.cache.stats.as_dict().items()
        }
        merged.update(
            {f"admission_{key}": value for key, value in self.admission.stats.as_dict().items()}
        )
        if self.shared is not None:
            # "shared_cache_" (not "shared_"): RouterStats already owns
            # "shared_hits" for L2-promote counts.
            merged.update(
                {
                    f"shared_cache_{key}": value
                    for key, value in self.shared.stats.as_dict().items()
                }
            )
        merged.update(self.stats.as_dict())
        merged["worker_rebuilds"] = float(
            sum(service.worker_rebuilds for service in self.services)
        )
        return merged

    def introspect(self) -> Dict[str, object]:
        """The operator-facing snapshot: fleet, shards, admission, caches."""
        with self._inflight_lock:
            inflight = len(self._inflight)
        return {
            "router": self.stats.as_dict(),
            "version_vector": list(self.version_vector),
            "admission": self.admission.stats.as_dict(),
            "inflight": inflight,
            "cache": self.cache.stats.as_dict(),
            "shared": self.shared.stats.as_dict() if self.shared is not None else None,
            "shared_degraded": (
                self.shared.degraded_reasons() if self.shared is not None else []
            ),
            "fingerprints": self.introspection.snapshot(),
            "slow_queries": [
                record.as_dict()
                for record in self.introspection.slow_queries.records()
            ],
            "explain": self.stats_registry.snapshot(),
            "flight": self.flight.snapshot(),
            "shards": [
                {
                    "shard_id": shard.shard_id,
                    "owned": len(shard.owned),
                    "nodes": shard.graph.num_nodes,
                    "version": shard.graph.version,
                    "service": service.stats.as_dict(),
                    "last_round_counter": (
                        self.last_round_counters[shard.shard_id].as_dict()
                        if shard.shard_id in self.last_round_counters
                        else None
                    ),
                }
                for shard, service in zip(self.shards, self.services)
            ],
        }

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Drain and stop: admitted work finishes, then the fleet shuts down.

        Admission closes first (new submits raise), the dispatcher drains
        what was already admitted, and only then do the shard services —
        and an owned shared-cache handle — go down.
        """
        self.admission.close()
        with self._dispatcher_lock:
            dispatcher = self._dispatcher
        if dispatcher is not None and dispatcher.is_alive():
            dispatcher.join()
        with self._evaluate_lock:
            self._closed = True
            for service in self.services:
                service.close()
            if self.shared is not None and self._owns_shared:
                self.shared.close()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedService(shards={self.num_shards}, d={self.d}, "
            f"served={self.stats.served}, vector={self.version_vector.key_text()})"
        )
