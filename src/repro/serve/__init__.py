"""Scale-out serving: shard router, admission control, shared result cache.

``repro.serve`` is the eighth layer of the reproduction — the one that turns
one :class:`~repro.service.server.QueryService` into a *fleet*:

* :mod:`repro.serve.versions` — :class:`VersionVector`, per-shard mutation
  counters as one immutable, hashable, cache-key-ready vector (a collapsed
  scalar aliases distinct fleet states — the bug class the vector exists to
  kill);
* :mod:`repro.serve.shards` — deterministic node-hash ownership with d-hop
  halo balls (:func:`build_shards`), plus delta routing: which shards a
  batch reaches (:func:`affected_shards`) and the exact per-shard sub-delta
  (:func:`shard_subdelta` via :func:`repro.delta.graph_diff`);
* :mod:`repro.serve.admission` — the bounded, prioritised front door:
  reject-with-:class:`~repro.utils.errors.Overloaded` or block-with-timeout
  backpressure and graceful drain;
* :mod:`repro.serve.shared_cache` — the sqlite cross-process L2, CRC-checked,
  where every read failure degrades to recompute, never to a wrong answer;
* :mod:`repro.serve.router` — :class:`ShardedService`, composing all of the
  above: coalesced fan-out with answers merged byte-identical to a single
  service on the union graph, in-flight dedup, vector-keyed caching, and
  delta routing that bumps only the shards a batch reaches.

See ``docs/SERVING.md`` for the executable walkthrough and
``benchmarks/bench_scaleout.py`` for the figure this layer is measured by.
"""

from repro.serve.admission import AdmissionConfig, AdmissionQueue, AdmissionStats
from repro.serve.router import RouterStats, ShardedService
from repro.serve.shards import (
    GraphShard,
    affected_shards,
    build_shards,
    hash_assign,
    shard_subdelta,
    undirected_ball,
)
from repro.serve.shared_cache import SharedCacheStats, SharedResultCache
from repro.serve.versions import VersionVector

__all__ = [
    "ShardedService",
    "RouterStats",
    "VersionVector",
    "GraphShard",
    "build_shards",
    "hash_assign",
    "undirected_ball",
    "affected_shards",
    "shard_subdelta",
    "AdmissionConfig",
    "AdmissionQueue",
    "AdmissionStats",
    "SharedResultCache",
    "SharedCacheStats",
]
