"""A cross-process result cache on sqlite, safe by construction — and by CRC.

Sharing answers *across processes* is sound for the same reason the in-memory
:class:`~repro.service.cache.ResultCache` is sound within one: every part of
the key is content-addressed or versioned.  Fingerprints are SHA-256 of the
canonicalized pattern (equal fingerprint ⇒ isomorphic focused pattern ⇒
identical answers), engine options encode as a deterministic text key
(:func:`repro.parallel.worker.options_key_text`), and the fleet's
:class:`~repro.serve.versions.VersionVector` is in the key — two processes
that built their shards the same deterministic way
(:func:`repro.serve.shards.hash_assign`) and applied the same update stream
agree on the vector, so an entry one wrote is exactly the answer the other
would compute.

What is *not* safe by construction is the storage: a shared file can be
truncated mid-write, flipped by a bad disk, locked by a peer, or written by a
newer schema.  The contract of :class:`SharedResultCache` is therefore
asymmetric:

* a **hit** is served only after every integrity gate passes — payload CRC,
  schema version, and the payload's embedded key re-checked against the
  request (so a blob transplanted under the wrong row can never be served);
* **any** failure — corrupt blob, version skew, truncation, a locked
  database, an unpicklable payload — degrades to a *miss* (the caller
  recomputes), increments ``serve.cache.degraded``, and never raises.

Reads can lie; recomputing is always correct.  Writes are best-effort for the
same reason: losing a store costs a future recompute, nothing else.
"""

from __future__ import annotations

import pickle
import sqlite3
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.obs.metrics import get_registry
from repro.utils.errors import ReproError

__all__ = ["SharedCacheStats", "SharedResultCache"]

SCHEMA_VERSION = 1

# Failure modes that degrade to recompute.  Deliberately broad: pickle can
# raise almost anything on a corrupted stream (UnpicklingError, EOFError,
# ValueError, AttributeError, ImportError, MemoryError is excluded on
# purpose), sqlite raises sqlite3.Error subclasses for locks/corruption, and
# a vanished or truncated file surfaces as OSError.
_DEGRADABLE = (
    sqlite3.Error,
    OSError,
    pickle.UnpicklingError,
    EOFError,
    ValueError,
    TypeError,
    KeyError,
    IndexError,
    AttributeError,
    ImportError,
)


@dataclass
class SharedCacheStats:
    """Lifetime counters of one store handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    degraded: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "degraded": self.degraded,
        }


class SharedResultCache:
    """Answers keyed ``(fingerprint, options text, version text)`` in sqlite.

    Parameters
    ----------
    path:
        Database file path; created (with schema) if absent.  ``":memory:"``
        works for tests but is then per-handle, not shared.
    busy_timeout:
        Seconds sqlite waits on a locked database before the lock degrades
        to a recompute.  Kept deliberately small: waiting longer than the
        recompute would take defeats the cache.

    The handle is thread-safe (one connection, one lock) and a context
    manager.  A schema-version mismatch in an existing file puts the handle
    in **degraded mode**: every lookup is a degraded miss and stores are
    dropped — never touch a file a newer writer owns.
    """

    def __init__(self, path: str, busy_timeout: float = 0.2) -> None:
        self.path = str(path)
        self.stats = SharedCacheStats()
        self._lock = threading.Lock()
        self._closed = False
        self._degraded_mode = False
        self.last_degraded_reason = ""
        # Bounded history of every degradation, newest last: post-mortems need
        # the *sequence* of fault kinds, not just whichever happened last.
        # Appended lock-free (deque.append is atomic; _note_degraded runs both
        # inside and outside self._lock, so it must never take it).
        self.degraded_history: Deque[Tuple[float, str]] = deque(maxlen=64)
        self._degraded_listeners: List[Callable[[str], None]] = []
        try:
            self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
                self.path, timeout=busy_timeout, check_same_thread=False
            )
            self._initialise_schema()
        except _DEGRADABLE as error:
            # Even an unopenable store must not take serving down with it.
            self._connection = None
            self._degraded_mode = True
            self._note_degraded(f"open: {error}")

    def _initialise_schema(self) -> None:
        assert self._connection is not None
        with self._connection:
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                "  cache_key TEXT PRIMARY KEY,"
                "  crc INTEGER NOT NULL,"
                "  payload BLOB NOT NULL)"
            )
            row = self._connection.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._connection.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif row[0] != str(SCHEMA_VERSION):
                # Version skew: a foreign writer owns this file.  Serve
                # nothing from it, write nothing to it.
                self._degraded_mode = True

    # ----------------------------------------------------------------- access

    @staticmethod
    def cache_key(fingerprint: str, options_text: str, version_text: str) -> str:
        """The row key.  Every component is process-independent text."""
        return f"{fingerprint}|{options_text}|{version_text}"

    def lookup(
        self, fingerprint: str, options_text: str, version_text: str
    ) -> Optional[FrozenSet[Hashable]]:
        """The stored answer, or ``None`` (miss *or* degraded read)."""
        key = self.cache_key(fingerprint, options_text, version_text)
        try:
            with self._lock:
                if self._closed:
                    raise ReproError("shared cache is closed")
                if self._degraded_mode or self._connection is None:
                    self._note_degraded("degraded mode")
                    return None
                row = self._connection.execute(
                    "SELECT crc, payload FROM entries WHERE cache_key = ?", (key,)
                ).fetchone()
            if row is None:
                self.stats.misses += 1
                registry = get_registry()
                if registry:
                    registry.counter("serve.cache.misses").inc()
                return None
            crc, payload = row
            if zlib.crc32(payload) != crc:
                self._note_degraded("payload CRC mismatch")
                return None
            stored_key, answer = pickle.loads(payload)
            if stored_key != key:
                # A CRC-valid blob filed under the wrong row (copied, spliced,
                # or a key collision we refuse to believe in): the embedded
                # key is the last gate between corruption and a wrong answer.
                self._note_degraded("embedded key mismatch")
                return None
            frozen = frozenset(answer)
        except _DEGRADABLE as error:
            self._note_degraded(f"read: {error}")
            return None
        self.stats.hits += 1
        registry = get_registry()
        if registry:
            registry.counter("serve.cache.hits").inc()
        return frozen

    def store(
        self,
        fingerprint: str,
        options_text: str,
        version_text: str,
        answer: Iterable[Hashable],
    ) -> bool:
        """Best-effort insert-or-replace; ``False`` when the write degraded."""
        key = self.cache_key(fingerprint, options_text, version_text)
        try:
            payload = pickle.dumps((key, sorted(answer, key=repr)))
            crc = zlib.crc32(payload)
            with self._lock:
                if self._closed:
                    raise ReproError("shared cache is closed")
                if self._degraded_mode or self._connection is None:
                    self._note_degraded("degraded mode")
                    return False
                with self._connection:
                    self._connection.execute(
                        "INSERT OR REPLACE INTO entries (cache_key, crc, payload) "
                        "VALUES (?, ?, ?)",
                        (key, crc, payload),
                    )
        except _DEGRADABLE as error:
            self._note_degraded(f"write: {error}")
            return False
        self.stats.stores += 1
        registry = get_registry()
        if registry:
            registry.counter("serve.cache.stores").inc()
        return True

    # ------------------------------------------------------------ bookkeeping

    def _note_degraded(self, reason: str) -> None:
        self.stats.degraded += 1
        self.stats.misses += 1
        registry = get_registry()
        if registry:
            registry.counter("serve.cache.degraded").inc()
            registry.counter("serve.cache.misses").inc()
        self.last_degraded_reason = reason
        self.degraded_history.append((time.time(), reason))
        for listener in self._degraded_listeners:
            try:
                listener(reason)
            except Exception:
                # A broken observer must never turn a degraded *read* into a
                # failed one — degradation reporting is strictly best-effort.
                pass

    def add_degraded_listener(self, callback: Callable[[str], None]) -> None:
        """Invoke *callback(reason)* on every future degradation (the router
        wires its flight recorder in through this)."""
        self._degraded_listeners.append(callback)

    def degraded_reasons(self) -> List[Dict[str, object]]:
        """The retained degradation history, oldest first, as plain dicts."""
        return [
            {"timestamp": timestamp, "reason": reason}
            for timestamp, reason in list(self.degraded_history)
        ]

    def entry_count(self) -> Optional[int]:
        """Rows currently stored (``None`` when even counting degrades)."""
        try:
            with self._lock:
                if self._connection is None or self._degraded_mode:
                    return None
                row = self._connection.execute(
                    "SELECT COUNT(*) FROM entries"
                ).fetchone()
            return int(row[0])
        except _DEGRADABLE:
            return None

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._connection is not None:
                try:
                    self._connection.close()
                except sqlite3.Error:
                    pass
                self._connection = None

    def __enter__(self) -> "SharedResultCache":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SharedResultCache(path={self.path!r}, hits={self.stats.hits}, "
            f"misses={self.stats.misses}, degraded={self.stats.degraded})"
        )
