"""A small textual DSL for quantified graph patterns.

The DSL keeps examples, tests and interactive exploration readable.  A pattern
is a block of lines:

.. code-block:: text

    # Q2 of the paper: everyone xo follows recommends the phone
    focus xo : person
    node  z  : person
    node  redmi : product
    edge  xo -follow-> z        [= 100%]
    edge  z  -recom->  redmi

Grammar (one declaration per line, ``#`` starts a comment):

* ``focus <id> : <label>`` — the query focus (exactly one per pattern),
* ``node <id> : <label>``  — an ordinary pattern node,
* ``edge <src> -<label>-> <dst> [<quantifier>]`` — a pattern edge; the
  bracketed quantifier is optional and one of ``>= p``, ``> p``, ``= p``,
  ``>= p%``, ``= p%``, ``= 0`` (negation), ``forall`` (alias of ``= 100%``).

:func:`parse_pattern` returns a validated :class:`QuantifiedGraphPattern`.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.patterns.qgp import QuantifiedGraphPattern
from repro.patterns.quantifier import CountingQuantifier
from repro.utils.errors import ParseError

__all__ = ["parse_pattern", "parse_quantifier", "pattern_to_text"]

_NODE_RE = re.compile(r"^(focus|node)\s+(\S+)\s*:\s*(\S+)$")
_EDGE_RE = re.compile(r"^edge\s+(\S+)\s*-(\S+?)->\s*(\S+)(?:\s*\[(.+)\])?$")
_QUANT_RE = re.compile(r"^(>=|=|>)\s*([0-9]+(?:\.[0-9]+)?)\s*(%?)$")


def parse_quantifier(text: str) -> CountingQuantifier:
    """Parse a quantifier expression such as ``">= 80%"`` or ``"= 0"``.

    ``"forall"`` is accepted as an alias for ``"= 100%"`` and ``"exists"`` for
    the existential default ``">= 1"``.
    """
    stripped = text.strip().lower()
    if stripped == "forall":
        return CountingQuantifier.universal()
    if stripped == "exists":
        return CountingQuantifier.existential()
    match = _QUANT_RE.match(text.strip())
    if not match:
        raise ParseError(f"cannot parse quantifier {text!r}")
    op, value, percent = match.groups()
    if percent:
        return CountingQuantifier(op, float(value), True)
    number = float(value)
    if not number.is_integer():
        raise ParseError(f"numeric quantifier threshold must be an integer: {text!r}")
    return CountingQuantifier(op, int(number), False)


def parse_pattern(text: str, name: str = "Q", validate: bool = True) -> QuantifiedGraphPattern:
    """Parse the DSL in *text* into a :class:`QuantifiedGraphPattern`."""
    pattern = QuantifiedGraphPattern(name=name)
    focus: Optional[str] = None
    pending_edges = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        node_match = _NODE_RE.match(line)
        if node_match:
            kind, node, label = node_match.groups()
            pattern.add_node(node, label)
            if kind == "focus":
                if focus is not None:
                    raise ParseError(f"line {line_number}: a pattern can have only one focus")
                focus = node
            continue
        edge_match = _EDGE_RE.match(line)
        if edge_match:
            source, label, target, quantifier_text = edge_match.groups()
            quantifier = (
                parse_quantifier(quantifier_text)
                if quantifier_text is not None
                else CountingQuantifier.existential()
            )
            pending_edges.append((line_number, source, target, label, quantifier))
            continue
        raise ParseError(f"line {line_number}: cannot parse {raw.strip()!r}")

    if focus is None:
        raise ParseError("the pattern declares no focus")
    pattern.set_focus(focus)
    for line_number, source, target, label, quantifier in pending_edges:
        if not pattern.graph.has_node(source):
            raise ParseError(f"line {line_number}: undeclared node {source!r}")
        if not pattern.graph.has_node(target):
            raise ParseError(f"line {line_number}: undeclared node {target!r}")
        pattern.add_edge(source, target, label, quantifier)
    if validate:
        pattern.validate()
    return pattern


def pattern_to_text(pattern: QuantifiedGraphPattern) -> str:
    """Render *pattern* back into the DSL (inverse of :func:`parse_pattern`)."""
    lines = []
    focus = pattern.focus
    lines.append(f"focus {focus} : {pattern.node_label(focus)}")
    for node in sorted(pattern.nodes(), key=str):
        if node == focus:
            continue
        lines.append(f"node {node} : {pattern.node_label(node)}")
    for edge in pattern.edges():
        suffix = "" if edge.is_existential else f" [{edge.quantifier}]"
        lines.append(f"edge {edge.source} -{edge.label}-> {edge.target}{suffix}")
    return "\n".join(lines)
