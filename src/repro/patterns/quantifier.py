"""Counting quantifiers on pattern edges.

A quantified graph pattern attaches to every edge ``e`` a predicate ``f(e)``
(Section 2.2 of the paper) of one of the forms

* ``σ(e) ⊙ p``     — a *numeric* aggregate, ``p`` a positive integer,
* ``σ(e) ⊙ p%``    — a *ratio* aggregate, ``p ∈ (0, 100]``,
* ``σ(e) = 0``     — *negation* (the edge is a negated edge),

where ``⊙ ∈ {≥, =, >}`` (the paper focuses on ``≥`` and ``=``; ``>`` is the
straightforward extension ``σ(e) ≥ p+1`` mentioned in Section 4.1).  The three
logical quantifiers are special cases:

* existential quantification  — ``σ(e) ≥ 1`` (the default on unannotated edges),
* universal quantification    — ``σ(e) = 100%``,
* negation                    — ``σ(e) = 0``.

:class:`CountingQuantifier` is an immutable value object: the matching engines
evaluate it against a (count, total) pair, where *count* is
``|Me(h0(xo), h0(u), Q)|`` and *total* is ``|Me(h0(u))|`` in the paper's
notation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

from repro.utils.errors import QuantifierError

__all__ = ["CountingQuantifier", "Comparison"]

Comparison = str  # one of ">=", "=", ">"

_VALID_OPS = (">=", "=", ">")


@dataclass(frozen=True)
class CountingQuantifier:
    """An immutable counting quantifier ``σ(e) ⊙ value`` (optionally a ratio).

    Attributes
    ----------
    op:
        The comparison ``⊙``: one of ``">="``, ``"="`` or ``">"``.
    value:
        The threshold ``p``.  For ratio quantifiers it is a percentage in
        ``(0, 100]``; for numeric quantifiers a non-negative integer (``0`` is
        only legal together with ``op="="``, which encodes negation).
    is_ratio:
        Whether the threshold is a percentage of ``|Me(v)|``.
    """

    op: Comparison = ">="
    value: Union[int, float] = 1
    is_ratio: bool = False

    def __post_init__(self) -> None:
        if self.op not in _VALID_OPS:
            raise QuantifierError(f"unsupported comparison operator {self.op!r}")
        if self.is_ratio:
            if not 0.0 < float(self.value) <= 100.0:
                raise QuantifierError(
                    f"ratio threshold must be in (0, 100], got {self.value!r}"
                )
        else:
            if not float(self.value).is_integer():
                raise QuantifierError(
                    f"numeric threshold must be an integer, got {self.value!r}"
                )
            if self.value < 0:
                raise QuantifierError("numeric threshold must be non-negative")
            if self.value == 0 and self.op != "=":
                raise QuantifierError(
                    "a zero threshold is only meaningful as '= 0' (negation)"
                )

    # ------------------------------------------------------------ constructors

    @classmethod
    def existential(cls) -> "CountingQuantifier":
        """``σ(e) ≥ 1`` — the implicit quantifier of conventional pattern edges."""
        return cls(">=", 1, False)

    @classmethod
    def universal(cls) -> "CountingQuantifier":
        """``σ(e) = 100%`` — all children via this edge label must match."""
        return cls("=", 100.0, True)

    @classmethod
    def negation(cls) -> "CountingQuantifier":
        """``σ(e) = 0`` — no child via this edge label may match (negated edge)."""
        return cls("=", 0, False)

    @classmethod
    def at_least(cls, count: int) -> "CountingQuantifier":
        """``σ(e) ≥ count`` for a positive integer *count*."""
        return cls(">=", int(count), False)

    @classmethod
    def exactly(cls, count: int) -> "CountingQuantifier":
        """``σ(e) = count`` for a non-negative integer *count*."""
        return cls("=", int(count), False)

    @classmethod
    def more_than(cls, count: int) -> "CountingQuantifier":
        """``σ(e) > count`` for a non-negative integer *count*."""
        return cls(">", int(count), False)

    @classmethod
    def ratio_at_least(cls, percent: float) -> "CountingQuantifier":
        """``σ(e) ≥ percent %`` for a percentage in ``(0, 100]``."""
        return cls(">=", float(percent), True)

    @classmethod
    def ratio_exactly(cls, percent: float) -> "CountingQuantifier":
        """``σ(e) = percent %`` for a percentage in ``(0, 100]``."""
        return cls("=", float(percent), True)

    # ------------------------------------------------------------- predicates

    @property
    def is_negation(self) -> bool:
        """True for ``σ(e) = 0`` (a negated edge)."""
        return not self.is_ratio and self.op == "=" and self.value == 0

    @property
    def is_existential(self) -> bool:
        """True for the default quantifier ``σ(e) ≥ 1``."""
        return not self.is_ratio and self.op == ">=" and self.value == 1

    @property
    def is_universal(self) -> bool:
        """True for ``σ(e) = 100%``."""
        return self.is_ratio and self.op == "=" and float(self.value) == 100.0

    @property
    def is_positive(self) -> bool:
        """True unless the quantifier is the negation ``σ(e) = 0``."""
        return not self.is_negation

    # -------------------------------------------------------------- evaluation

    def numeric_threshold(self, total: int) -> int:
        """The equivalent numeric threshold given ``|Me(v)| = total``.

        For numeric quantifiers this is simply ``p``.  For ratio quantifiers
        the paper (Section 4.1, "Ratio aggregates") converts ``σ(e) ⊙ p%`` at a
        candidate ``v`` to the numeric ``σ(e) ⊙ ⌊|Me(v)| · p%⌋`` — with the one
        refinement that for ``≥`` we must round *up*, since a count strictly
        between ``⌊total·p%⌋`` and ``total·p%`` does not actually reach the
        ratio.  (For ``=`` the universal case ``p = 100%`` gives exactly
        ``total``.)
        """
        if not self.is_ratio:
            return int(self.value)
        fraction = float(self.value) / 100.0
        exact = fraction * total
        if self.op == ">=":
            return int(math.ceil(exact - 1e-9))
        if self.op == ">":
            return int(math.floor(exact + 1e-9))
        # op == "=": only meaningful when the product is integral (e.g. 100%).
        return int(round(exact))

    def check(self, count: int, total: int) -> bool:
        """Evaluate the quantifier for *count* matching children out of *total*.

        Ratio quantifiers with ``total == 0`` are unsatisfiable (there are no
        children to take a ratio over), except that a count of zero trivially
        satisfies nothing but ``= 0`` — which is a numeric quantifier anyway.
        """
        if count < 0 or total < 0:
            raise QuantifierError("count and total must be non-negative")
        if self.is_ratio:
            if total == 0:
                return False
            ratio = 100.0 * count / total
            if self.op == ">=":
                return ratio >= float(self.value) - 1e-9
            if self.op == ">":
                return ratio > float(self.value) + 1e-9
            return abs(ratio - float(self.value)) <= 1e-9
        threshold = int(self.value)
        if self.op == ">=":
            return count >= threshold
        if self.op == ">":
            return count > threshold
        return count == threshold

    def may_still_hold(self, upper_bound: int, total: int) -> bool:
        """Whether the quantifier can still be satisfied given an upper bound.

        Used by the pruning rules of DMatch: ``upper_bound`` is ``U(v, e)``,
        an over-estimate of ``|Me(vx, v, Q)|``.  When even the upper bound
        fails a ``≥``/``>`` threshold, the candidate can be discarded without
        further verification.  Equality and negation quantifiers can always
        still hold (the final count may drop to the required value), so they
        are never pruned by this test.
        """
        if self.is_negation:
            return True
        if self.op == "=":
            # The count can only decrease as verification proceeds, so an
            # upper bound below the target is conclusive failure.
            return upper_bound >= self.numeric_threshold(total)
        threshold = self.numeric_threshold(total)
        if self.op == ">":
            return upper_bound > threshold
        return upper_bound >= threshold

    # --------------------------------------------------------------- utility

    def positified(self) -> "CountingQuantifier":
        """The quantifier of the positified edge ``e`` in ``Q⁺ᵉ`` (σ(e) ≥ 1)."""
        if not self.is_negation:
            raise QuantifierError("only negated edges can be positified")
        return CountingQuantifier.existential()

    def describe(self) -> str:
        """A short human-readable rendering used by ``repr`` and reports."""
        if self.is_negation:
            return "= 0"
        suffix = "%" if self.is_ratio else ""
        value = self.value
        if not self.is_ratio:
            value = int(value)
        elif float(value).is_integer():
            value = int(value)
        return f"{self.op} {value}{suffix}"

    def __str__(self) -> str:
        return self.describe()
