"""Fluent construction of quantified graph patterns.

:class:`PatternBuilder` is the recommended way for library users to express
QGPs in code.  It mirrors the shape of the paper's example patterns closely;
the running example ``Q1`` of the paper (potential album buyers) reads:

>>> from repro.patterns import PatternBuilder
>>> q1 = (PatternBuilder("Q1")
...       .focus("xo", "person")
...       .node("club", "music_club")
...       .node("z", "person")
...       .node("y", "album")
...       .edge("xo", "club", "in")
...       .edge("xo", "z", "follow", at_least_percent=80)
...       .edge("z", "y", "like")
...       .edge("xo", "y", "like")
...       .build())
>>> q1.size_signature()
(4, 4, 80.0, 0)

The builder validates the finished pattern (connectivity, focus, the paper's
simple-path restrictions) in :meth:`PatternBuilder.build`.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.patterns.qgp import QuantifiedGraphPattern
from repro.patterns.quantifier import CountingQuantifier
from repro.utils.errors import PatternError

__all__ = ["PatternBuilder"]

NodeId = Hashable


class PatternBuilder:
    """Incrementally assemble a :class:`QuantifiedGraphPattern`."""

    def __init__(self, name: str = "Q") -> None:
        self._pattern = QuantifiedGraphPattern(name=name)
        self._focus_set = False

    # ----------------------------------------------------------------- nodes

    def focus(self, node: NodeId, label: str) -> "PatternBuilder":
        """Declare the query focus node ``xo`` and its label."""
        self._pattern.add_node(node, label)
        self._pattern.set_focus(node)
        self._focus_set = True
        return self

    def node(self, node: NodeId, label: str) -> "PatternBuilder":
        """Declare an ordinary pattern node."""
        self._pattern.add_node(node, label)
        return self

    # ----------------------------------------------------------------- edges

    def edge(
        self,
        source: NodeId,
        target: NodeId,
        label: str,
        quantifier: Optional[CountingQuantifier] = None,
        *,
        at_least: Optional[int] = None,
        at_least_percent: Optional[float] = None,
        exactly: Optional[int] = None,
        more_than: Optional[int] = None,
        universal: bool = False,
        negated: bool = False,
    ) -> "PatternBuilder":
        """Add a pattern edge with an optional counting quantifier.

        Exactly one of the quantifier keywords may be used; with none of them
        the edge carries the existential default ``σ(e) ≥ 1``.
        """
        chosen = [
            quantifier is not None,
            at_least is not None,
            at_least_percent is not None,
            exactly is not None,
            more_than is not None,
            universal,
            negated,
        ]
        if sum(bool(flag) for flag in chosen) > 1:
            raise PatternError("specify at most one quantifier form per edge")
        if at_least is not None:
            quantifier = CountingQuantifier.at_least(at_least)
        elif at_least_percent is not None:
            quantifier = CountingQuantifier.ratio_at_least(at_least_percent)
        elif exactly is not None:
            quantifier = CountingQuantifier.exactly(exactly)
        elif more_than is not None:
            quantifier = CountingQuantifier.more_than(more_than)
        elif universal:
            quantifier = CountingQuantifier.universal()
        elif negated:
            quantifier = CountingQuantifier.negation()
        self._pattern.add_edge(source, target, label, quantifier)
        return self

    def negated_edge(self, source: NodeId, target: NodeId, label: str) -> "PatternBuilder":
        """Shorthand for an edge carrying the negation quantifier ``σ(e) = 0``."""
        return self.edge(source, target, label, negated=True)

    # ------------------------------------------------------------------ build

    def build(self, validate: bool = True, max_quantified_per_path: int = 2) -> QuantifiedGraphPattern:
        """Finish construction, optionally validating the paper's restrictions."""
        if not self._focus_set:
            raise PatternError("a pattern needs a focus; call .focus(node, label) first")
        if validate:
            self._pattern.validate(max_quantified_per_path=max_quantified_per_path)
        return self._pattern

    def peek(self) -> QuantifiedGraphPattern:
        """The pattern under construction, without validation (for tests)."""
        return self._pattern
