"""Workload pattern generator (the paper's query generator, Section 7).

The experiments of the paper generate QGPs directly from the data graph:

1. mine *frequent features* — edges and short paths (length ≤ 3) described by
   their label sequences — and keep the top-k most frequent as *seeds*;
2. combine seeds into a stratified pattern ``Qπ`` with the requested numbers
   of nodes and edges;
3. attach a positive ratio quantifier ``σ(e) ≥ p%`` (default 30%) to frequent
   pattern edges, which yields ``Π(Q)``;
4. add the requested number of negated edges, which yields ``Q``.

The generator below follows that recipe.  Patterns are grown around a focus
node whose label is the most frequent source label among the seeds, so the
generated workloads are star-like — matching the empirical observation the
paper cites that 99% of real-world queries are star-like.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.digraph import PropertyGraph
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.patterns.quantifier import CountingQuantifier
from repro.utils.errors import PatternError
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "FrequentEdge",
    "mine_frequent_edges",
    "mine_frequent_paths",
    "generate_pattern",
    "generate_workload",
]


@dataclass(frozen=True)
class FrequentEdge:
    """A frequent typed edge ``(source label) -[edge label]-> (target label)``."""

    source_label: str
    edge_label: str
    target_label: str
    count: int


def mine_frequent_edges(graph: PropertyGraph, top_k: int = 5) -> List[FrequentEdge]:
    """The *top_k* most frequent (source label, edge label, target label) triples."""
    counts: Counter = Counter()
    for source, target, label in graph.edges():
        counts[(graph.node_label(source), label, graph.node_label(target))] += 1
    ranked = counts.most_common(top_k)
    return [
        FrequentEdge(source_label, edge_label, target_label, count)
        for (source_label, edge_label, target_label), count in ranked
    ]


def mine_frequent_paths(
    graph: PropertyGraph,
    max_length: int = 3,
    top_k: int = 5,
    sample_nodes: int = 2000,
    seed: SeedLike = None,
) -> List[Tuple[Tuple[str, ...], int]]:
    """Frequent label sequences of directed paths up to *max_length* edges.

    A path feature is the alternating label sequence
    ``(node label, edge label, node label, ...)``.  To stay cheap on large
    graphs, paths are counted from a random sample of start nodes.
    """
    rng = ensure_rng(seed)
    nodes = list(graph.nodes())
    if len(nodes) > sample_nodes:
        nodes = rng.sample(nodes, sample_nodes)
    counts: Counter = Counter()

    def walk(node, feature: Tuple[str, ...], depth: int) -> None:
        if depth >= max_length:
            return
        for label in graph.out_edge_labels(node):
            for child in graph.successors(node, label):
                extended = feature + (label, graph.node_label(child))
                counts[extended] += 1
                walk(child, extended, depth + 1)

    for node in nodes:
        walk(node, (graph.node_label(node),), 0)
    return counts.most_common(top_k)


def _pick_focus_label(seeds: Sequence[FrequentEdge]) -> str:
    """The most common source label among the seeds becomes the focus label."""
    tally = Counter(seed.source_label for seed in seeds)
    return tally.most_common(1)[0][0]


def generate_pattern(
    graph: PropertyGraph,
    num_nodes: int,
    num_edges: int,
    ratio_percent: float = 30.0,
    num_negated: int = 0,
    num_quantified: Optional[int] = None,
    seeds: Optional[Sequence[FrequentEdge]] = None,
    seed: SeedLike = None,
    name: str = "Q",
) -> QuantifiedGraphPattern:
    """Generate one QGP of size ``(num_nodes, num_edges, ratio_percent, num_negated)``.

    Parameters
    ----------
    graph:
        Data graph to mine frequent features from.
    num_nodes, num_edges:
        Target pattern size; ``num_edges`` must be at least ``num_nodes - 1``
        so the pattern can be connected.
    ratio_percent:
        The ratio threshold attached to quantified edges (the paper's ``p%``).
    num_negated:
        Number of negated edges appended to ``Π(Q)``.
    num_quantified:
        How many positive edges receive the ratio quantifier; defaults to one
        per two pattern edges, capped by the simple-path restriction.
    seeds:
        Pre-mined frequent edges; mined from *graph* when omitted.
    """
    if num_nodes < 2:
        raise PatternError("a workload pattern needs at least two nodes")
    if num_edges < num_nodes - 1:
        raise PatternError("num_edges must be at least num_nodes - 1 for connectivity")
    rng = ensure_rng(seed)
    seeds = list(seeds) if seeds else mine_frequent_edges(graph, top_k=5)
    if not seeds:
        raise PatternError("the data graph has no edges to mine seeds from")

    focus_label = _pick_focus_label(seeds)
    by_source: Dict[str, List[FrequentEdge]] = {}
    for feature in seeds:
        by_source.setdefault(feature.source_label, []).append(feature)

    pattern = QuantifiedGraphPattern(name=name)
    focus = "x0"
    pattern.add_node(focus, focus_label)
    pattern.set_focus(focus)
    node_count = 1
    labels_of: Dict[str, str] = {focus: focus_label}

    # Each negated edge introduces one fresh node below, so the positive part
    # grows to the remaining node budget.
    positive_node_budget = max(2, num_nodes - num_negated)

    # Grow a connected stratified pattern by repeatedly expanding a random
    # existing node with a frequent feature whose source label matches it —
    # the seed-combination step of the paper's workload generator.  Only
    # features whose source label matches the expanded node are used, so the
    # stratified pattern always describes label sequences that actually occur
    # in the data graph.
    attempts = 0
    while node_count < positive_node_budget and attempts < 50 * num_nodes:
        attempts += 1
        expandable = [n for n in labels_of if by_source.get(labels_of[n])]
        if not expandable:
            break
        anchor = rng.choice(expandable)
        feature = rng.choice(by_source[labels_of[anchor]])
        new_node = f"x{node_count}"
        pattern.add_node(new_node, feature.target_label)
        labels_of[new_node] = feature.target_label
        pattern.add_edge(anchor, new_node, feature.edge_label)
        node_count += 1

    # Add extra edges between existing nodes until the edge budget for the
    # positive part is exhausted (leave room for the negated edges).  Real
    # workloads are overwhelmingly star-like (the paper cites [18]), so the
    # extra edges are biased towards leaving the focus.
    positive_budget = max(num_edges - num_negated, node_count - 1)
    attempts = 0
    existing = list(labels_of)
    while pattern.num_edges < positive_budget and attempts < 50 * num_edges:
        attempts += 1
        source = focus if rng.random() < 0.7 else rng.choice(existing)
        feature_options = by_source.get(labels_of[source])
        if not feature_options:
            continue
        feature = rng.choice(feature_options)
        targets = [n for n in existing if labels_of[n] == feature.target_label and n != source]
        if not targets:
            continue
        target = rng.choice(targets)
        if pattern.graph.has_edge(source, target, feature.edge_label):
            continue
        pattern.add_edge(source, target, feature.edge_label)

    # Attach ratio quantifiers to edges leaving the focus (star-like usage),
    # respecting the simple-path restriction of at most 2 non-existential
    # quantifiers per path.
    if num_quantified is None:
        num_quantified = max(1, pattern.num_edges // 3)
    quantified = 0
    for edge in pattern.out_edges(focus):
        if quantified >= num_quantified:
            break
        pattern.set_quantifier(
            edge.source,
            edge.target,
            edge.label,
            CountingQuantifier.ratio_at_least(ratio_percent),
        )
        quantified += 1

    # Append negated edges: each goes from an existing node to a fresh node
    # labeled by a frequent target label, which keeps the pattern valid (no
    # double negation on any simple path).  Nodes with no outgoing frequent
    # feature (pure "constants") cannot anchor a negated edge.
    for index in range(num_negated):
        anchor_choices = [n for n in labels_of if by_source.get(labels_of[n])]
        if not anchor_choices:
            break
        anchor = rng.choice(anchor_choices)
        feature = rng.choice(by_source[labels_of[anchor]])
        new_node = f"neg{index}"
        pattern.add_node(new_node, feature.target_label)
        pattern.add_edge(anchor, new_node, feature.edge_label, CountingQuantifier.negation())

    pattern.validate()
    return pattern


def generate_workload(
    graph: PropertyGraph,
    count: int,
    num_nodes: int,
    num_edges: int,
    ratio_percent: float = 30.0,
    num_negated: int = 1,
    seed: SeedLike = None,
) -> List[QuantifiedGraphPattern]:
    """Generate *count* patterns with a shared seed mine (one mining pass)."""
    rng = ensure_rng(seed)
    seeds = mine_frequent_edges(graph, top_k=5)
    return [
        generate_pattern(
            graph,
            num_nodes=num_nodes,
            num_edges=num_edges,
            ratio_percent=ratio_percent,
            num_negated=num_negated,
            seeds=seeds,
            seed=rng,
            name=f"Q{i}",
        )
        for i in range(count)
    ]
