"""Complexity reductions from the paper's appendix (Lemmas 3 and 4).

These constructions are not used on the hot path of QMatch — the engine
converts ratio thresholds per candidate instead (Section 4.1) — but they are
part of the paper's contribution: they are *why* positive quantified matching
stays in NP.  Implementing them executable makes the upper-bound arguments
testable: the test suite checks on small instances that the transformed
problem has exactly the same answers as the original.

* :func:`expand_numeric_to_conventional` — Lemma 3: a positive QGP whose
  quantifiers are numeric ``σ(e) ≥ p`` can be rewritten into a *conventional*
  pattern by cloning, for every such edge ``(u, u')``, the sub-pattern hanging
  below ``u'`` ``p`` times.  Because isomorphisms are injective, the ``p``
  clones must map to ``p`` distinct children, which is precisely the counting
  condition.
* :func:`ratio_to_numeric` — Lemma 4: ratio quantifiers can be eliminated by
  padding the *graph* with dummy children so that the ratio threshold becomes
  a fixed numeric threshold.  For every node ``v`` with ``g`` children via the
  quantified edge label we add ``(d - g)`` dummy children, of which a
  ``p%`` share is made to *match* (each dummy match carries a fresh copy of
  the pattern sub-tree below ``u'``) and the rest is made non-matching; the
  quantifier ``σ(e) ≥ p%`` then becomes ``σ(e) ≥ ⌈p% · d⌉``.

Both constructions are defined for *tree-shaped* sub-patterns below the
quantified edge (the overwhelmingly common star-like case; the paper cites
[18] that 99% of real queries are star-like).  They raise
:class:`~repro.utils.errors.PatternError` otherwise.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Hashable, List, Set, Tuple

from repro.graph.digraph import PropertyGraph
from repro.patterns.qgp import PatternEdge, QuantifiedGraphPattern
from repro.patterns.quantifier import CountingQuantifier
from repro.utils.errors import PatternError

__all__ = ["expand_numeric_to_conventional", "ratio_to_numeric"]

NodeId = Hashable

_DUMMY_LABEL = "__dummy__"


def _subtree_nodes(pattern: QuantifiedGraphPattern, root: NodeId) -> List[NodeId]:
    """Nodes reachable from *root* following pattern edges forward (root included).

    Raises :class:`PatternError` if the reachable region is not a tree (a node
    reachable by two distinct paths), since the cloning constructions below
    assume tree shape.
    """
    order: List[NodeId] = [root]
    seen: Set[NodeId] = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for edge in pattern.out_edges(node):
            if edge.target in seen:
                raise PatternError(
                    "the sub-pattern below the quantified edge must be a tree"
                )
            seen.add(edge.target)
            order.append(edge.target)
            frontier.append(edge.target)
    return order


def expand_numeric_to_conventional(pattern: QuantifiedGraphPattern) -> QuantifiedGraphPattern:
    """Lemma 3 construction: eliminate ``σ(e) ≥ p`` quantifiers by cloning.

    For every edge ``(u, u')`` with ``σ(e) ≥ p`` the pattern receives ``p - 1``
    additional copies of ``u'`` as children of ``u``; every copy carries the
    same outgoing edges as ``u'`` (pointing at the *original* downstream
    pattern nodes, so shared constants such as "Redmi 2A" stay shared).
    Because isomorphisms are injective, the ``p`` siblings must map to ``p``
    distinct children — the counting condition.

    Only positive patterns with ``≥``-numeric quantifiers are supported (the
    lemma's setting), and the edges *below* a quantified edge must be
    existential (nested counting would need nested cloning).  The result is a
    conventional pattern ``Qe`` with ``Q(xo, G) = Qe(xo, G)``, an equality the
    test suite checks against the reference engine.
    """
    for edge in pattern.edges():
        quantifier = edge.quantifier
        if quantifier.is_negation or quantifier.is_ratio:
            raise PatternError(
                "expand_numeric_to_conventional handles positive numeric quantifiers only"
            )
        if quantifier.op != ">=":
            raise PatternError("only '>=' numeric quantifiers can be expanded")
        if quantifier.value > 1:
            for below in _subtree_nodes(pattern, edge.target)[1:]:
                for nested in pattern.out_edges(below):
                    if not nested.quantifier.is_existential:
                        raise PatternError(
                            "nested non-existential quantifiers below a quantified "
                            "edge are not supported by the expansion"
                        )

    counter = itertools.count()

    def clone_name(original: NodeId) -> NodeId:
        return f"{original}__copy{next(counter)}"

    expanded = QuantifiedGraphPattern(name=f"{pattern.name}#expanded")
    for node in pattern.nodes():
        expanded.add_node(node, pattern.node_label(node))
    expanded.set_focus(pattern.focus)

    def emit_copy(edge: PatternEdge) -> None:
        """Add one extra copy of *edge.target* as a child of *edge.source*."""
        clone = clone_name(edge.target)
        expanded.add_node(clone, pattern.node_label(edge.target))
        expanded.add_edge(edge.source, clone, edge.label)
        for child_edge in pattern.out_edges(edge.target):
            expanded.add_edge(clone, child_edge.target, child_edge.label)

    for edge in pattern.edges():
        threshold = int(edge.quantifier.value)
        # The first copy is the original edge (kept on original node ids);
        # the remaining threshold - 1 copies duplicate the child node.
        expanded.add_edge(edge.source, edge.target, edge.label)
        for _ in range(threshold - 1):
            emit_copy(edge)
    return expanded


def ratio_to_numeric(
    pattern: QuantifiedGraphPattern, graph: PropertyGraph
) -> Tuple[QuantifiedGraphPattern, PropertyGraph]:
    """Lemma 4 construction: eliminate ratio quantifiers by padding the graph.

    Returns ``(Qd, Gd)`` such that ``Q(xo, G) = Qd(xo, Gd)``.  Supported for
    positive patterns whose ratio quantifiers use ``≥`` and whose sub-pattern
    below the quantified edge is a tree.  Numeric quantifiers are passed
    through unchanged.
    """
    for edge in pattern.edges():
        if edge.quantifier.is_negation:
            raise PatternError("ratio_to_numeric expects a positive pattern")
        if edge.quantifier.is_ratio and edge.quantifier.op not in (">=",):
            raise PatternError("only '>=' ratio quantifiers are supported")

    ratio_edges = [edge for edge in pattern.edges() if edge.quantifier.is_ratio]
    padded = graph.copy(name=f"{graph.name}#padded")
    transformed = pattern.copy(name=f"{pattern.name}#numeric")
    if not ratio_edges:
        return transformed, padded

    fresh = itertools.count()

    def add_dummy_node(label: str) -> NodeId:
        node = f"__pad{next(fresh)}"
        padded.add_node(node, label)
        return node

    for edge in ratio_edges:
        percent = float(edge.quantifier.value) / 100.0
        source_label = pattern.node_label(edge.source)
        target_label = pattern.node_label(edge.target)
        subtree = _subtree_nodes(pattern, edge.target)
        # d must be at least the largest relevant out-degree; choosing the max
        # keeps the padding small while making every node's total equal to d.
        candidates = list(padded.nodes_with_label(source_label))
        degrees = [
            len([c for c in padded.successors(v, edge.label)])
            for v in candidates
        ]
        d = max(degrees, default=0)
        if d == 0:
            continue
        threshold = int(math.ceil(percent * d - 1e-9))
        for v in candidates:
            g = len(padded.successors(v, edge.label))
            if g == 0:
                # A node with no children via this edge label cannot match the
                # stratified pattern either, in the original or in the padded
                # graph; padding it would wrongly make it a match.
                continue
            missing = d - g
            if missing <= 0:
                continue
            matching = int(round(percent * missing))
            non_matching = missing - matching
            for _ in range(non_matching):
                dummy = add_dummy_node(_DUMMY_LABEL)
                padded.add_edge(v, dummy, edge.label)
            for _ in range(matching):
                # A matching dummy child is a fresh copy of the pattern
                # sub-tree below the target, so it completes an isomorphic
                # image of that sub-tree.
                mapping: Dict[NodeId, NodeId] = {}
                for original in subtree:
                    mapping[original] = add_dummy_node(pattern.node_label(original))
                padded.add_edge(v, mapping[edge.target], edge.label)
                for original in subtree:
                    for child_edge in pattern.out_edges(original):
                        padded.add_edge(
                            mapping[original], mapping[child_edge.target], child_edge.label
                        )
        transformed.set_quantifier(
            edge.source,
            edge.target,
            edge.label,
            CountingQuantifier.at_least(max(threshold, 1)),
        )
    return transformed, padded
