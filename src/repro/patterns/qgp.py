"""Quantified graph patterns (QGPs).

A QGP ``Q(xo) = (VQ, EQ, LQ, f)`` (paper Section 2.2) is a conventional graph
pattern — pattern nodes with labels, directed labeled pattern edges, and a
designated *query focus* ``xo`` — together with a function ``f`` that assigns a
:class:`~repro.patterns.quantifier.CountingQuantifier` to every edge.  Edges
without an explicit quantifier carry the existential default ``σ(e) ≥ 1``, so a
conventional pattern is just the special case where every edge is existential.

The class also implements the derived constructions the algorithms need:

* ``stratified()`` — ``Qπ``, the pattern with all quantifiers stripped
  (replaced by the existential default);
* ``pi()`` — ``Π(Q)``, the positive sub-pattern induced by the nodes connected
  to the focus through non-negated edges;
* ``positify(edge)`` — ``Q⁺ᵉ``, the pattern with one negated edge turned into
  an existential edge;
* ``radius()`` — the longest shortest (undirected) distance from the focus to
  any pattern node, which drives the choice of *d* for d-hop partitions;
* ``validate()`` — the structural restriction of the paper's *Remark*: at most
  ``l`` non-existential quantifiers and at most one negated edge on any simple
  path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.graph.digraph import PropertyGraph
from repro.graph.traversal import bfs_levels
from repro.patterns.quantifier import CountingQuantifier
from repro.utils.errors import PatternError, PatternValidationError

__all__ = ["PatternEdge", "QuantifiedGraphPattern", "EdgeKey"]

NodeId = Hashable
EdgeKey = Tuple[NodeId, NodeId, str]


@dataclass(frozen=True)
class PatternEdge:
    """One pattern edge together with its counting quantifier."""

    source: NodeId
    target: NodeId
    label: str
    quantifier: CountingQuantifier

    @property
    def key(self) -> EdgeKey:
        return (self.source, self.target, self.label)

    @property
    def is_negated(self) -> bool:
        return self.quantifier.is_negation

    @property
    def is_existential(self) -> bool:
        return self.quantifier.is_existential

    def __str__(self) -> str:
        return f"{self.source} -[{self.label}]-> {self.target} [{self.quantifier}]"


class QuantifiedGraphPattern:
    """A quantified graph pattern with a designated query focus.

    Parameters
    ----------
    focus:
        The query focus ``xo``.  It can be declared up-front or set later via
        :meth:`set_focus` (the builder does the latter), but it must be set and
        present before the pattern is used for matching.
    name:
        Optional name used in reports and ``repr``.
    """

    def __init__(self, focus: Optional[NodeId] = None, name: str = "Q") -> None:
        self.name = name
        self.graph = PropertyGraph(name=f"{name}-pattern")
        self._focus: Optional[NodeId] = focus
        self._quantifiers: Dict[EdgeKey, CountingQuantifier] = {}

    # -------------------------------------------------------------- structure

    @property
    def focus(self) -> NodeId:
        """The query focus ``xo``; raises if it was never set."""
        if self._focus is None:
            raise PatternError("the pattern has no query focus")
        return self._focus

    def has_focus(self) -> bool:
        return self._focus is not None

    def set_focus(self, node: NodeId) -> None:
        """Designate *node* (which must already be a pattern node) as the focus."""
        if not self.graph.has_node(node):
            raise PatternError(f"focus {node!r} is not a pattern node")
        self._focus = node

    def add_node(self, node: NodeId, label: str) -> NodeId:
        """Add a pattern node carrying *label*."""
        return self.graph.add_node(node, label)

    def add_edge(
        self,
        source: NodeId,
        target: NodeId,
        label: str,
        quantifier: Optional[CountingQuantifier] = None,
    ) -> PatternEdge:
        """Add a pattern edge; *quantifier* defaults to the existential ``≥ 1``."""
        if quantifier is None:
            quantifier = CountingQuantifier.existential()
        if not self.graph.has_node(source):
            raise PatternError(f"source {source!r} is not a pattern node")
        if not self.graph.has_node(target):
            raise PatternError(f"target {target!r} is not a pattern node")
        self.graph.add_edge(source, target, label)
        key = (source, target, label)
        self._quantifiers[key] = quantifier
        return PatternEdge(source, target, label, quantifier)

    def set_quantifier(self, source: NodeId, target: NodeId, label: str,
                       quantifier: CountingQuantifier) -> None:
        """Replace the quantifier of an existing edge."""
        key = (source, target, label)
        if key not in self._quantifiers:
            raise PatternError(f"edge {key!r} is not in the pattern")
        self._quantifiers[key] = quantifier

    def quantifier(self, source: NodeId, target: NodeId, label: str) -> CountingQuantifier:
        """The quantifier of the edge ``source -[label]-> target``."""
        try:
            return self._quantifiers[(source, target, label)]
        except KeyError:
            raise PatternError(f"edge ({source!r}, {target!r}, {label!r}) is not in the pattern") from None

    def nodes(self) -> Iterator[NodeId]:
        return self.graph.nodes()

    def node_label(self, node: NodeId) -> str:
        return self.graph.node_label(node)

    def edges(self) -> List[PatternEdge]:
        """All pattern edges (deterministically ordered) with their quantifiers."""
        result = [
            PatternEdge(source, target, label, quantifier)
            for (source, target, label), quantifier in self._quantifiers.items()
        ]
        result.sort(key=lambda e: (str(e.source), str(e.target), e.label))
        return result

    def out_edges(self, node: NodeId) -> List[PatternEdge]:
        """Pattern edges whose source is *node*."""
        return [edge for edge in self.edges() if edge.source == node]

    def in_edges(self, node: NodeId) -> List[PatternEdge]:
        """Pattern edges whose target is *node*."""
        return [edge for edge in self.edges() if edge.target == node]

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return len(self._quantifiers)

    # ----------------------------------------------------------- classification

    def negated_edges(self) -> List[PatternEdge]:
        """``E⁻Q``: the negated edges of the pattern."""
        return [edge for edge in self.edges() if edge.is_negated]

    def non_existential_edges(self) -> List[PatternEdge]:
        """Edges whose quantifier is not the existential default."""
        return [edge for edge in self.edges() if not edge.is_existential]

    @property
    def is_positive(self) -> bool:
        """True when the pattern has no negated edges (paper Section 2.2)."""
        return not any(edge.is_negated for edge in self.edges())

    @property
    def is_conventional(self) -> bool:
        """True when every edge carries the existential default quantifier."""
        return all(edge.is_existential for edge in self.edges())

    def size_signature(self) -> Tuple[int, int, float, int]:
        """``(|VQ|, |EQ|, pa, |E⁻Q|)`` — the size descriptor used in Section 7.

        ``pa`` is the average threshold over non-existential positive
        quantifiers (percentages for ratios, counts for numerics); 0.0 when
        there are none.
        """
        thresholds = [
            float(edge.quantifier.value)
            for edge in self.edges()
            if not edge.is_existential and not edge.is_negated
        ]
        average = sum(thresholds) / len(thresholds) if thresholds else 0.0
        return (self.num_nodes, self.num_edges, average, len(self.negated_edges()))

    # ------------------------------------------------------- derived patterns

    def stratified(self) -> "QuantifiedGraphPattern":
        """``Qπ``: the same topology with every quantifier replaced by ``≥ 1``."""
        stripped = QuantifiedGraphPattern(name=f"{self.name}#pi")
        for node in self.nodes():
            stripped.add_node(node, self.node_label(node))
        for edge in self.edges():
            stripped.add_edge(edge.source, edge.target, edge.label,
                              CountingQuantifier.existential())
        if self._focus is not None:
            stripped.set_focus(self._focus)
        return stripped

    def _positive_connected_nodes(self) -> Set[NodeId]:
        """Nodes on a directed non-negated path *from or to* the focus.

        This mirrors the paper's definition of Π(Q): in Fig. 3, Π(Q3) keeps
        only ``xo → z1 → Redmi 2A`` and drops ``z2`` entirely even though
        ``z2`` also points at the phone — ``z2`` is reachable from the focus
        only through the negated edge.
        """
        positive = PropertyGraph("positive-skeleton")
        for node in self.nodes():
            positive.add_node(node, self.node_label(node))
        reversed_skeleton = PropertyGraph("positive-skeleton-reversed")
        for node in self.nodes():
            reversed_skeleton.add_node(node, self.node_label(node))
        for edge in self.edges():
            if not edge.is_negated:
                positive.add_edge(edge.source, edge.target, edge.label)
                reversed_skeleton.add_edge(edge.target, edge.source, edge.label)
        forward = set(bfs_levels(positive, self.focus, directed=True))
        backward = set(bfs_levels(reversed_skeleton, self.focus, directed=True))
        return forward | backward

    def pi(self) -> "QuantifiedGraphPattern":
        """``Π(Q)``: the positive sub-pattern around the focus.

        Nodes connected to the focus only through negated edges are dropped,
        and so are all negated edges, so the result is always a positive QGP
        containing the focus.  A positive pattern is returned unchanged (up to
        a copy): Π(Q) = Q when there is nothing to strip.
        """
        if self.is_positive:
            copy = self.copy(name=f"Pi({self.name})")
            return copy
        keep = self._positive_connected_nodes()
        result = QuantifiedGraphPattern(name=f"Pi({self.name})")
        for node in keep:
            result.add_node(node, self.node_label(node))
        for edge in self.edges():
            if edge.is_negated:
                continue
            if edge.source in keep and edge.target in keep:
                result.add_edge(edge.source, edge.target, edge.label, edge.quantifier)
        result.set_focus(self.focus)
        return result

    def positify(self, edge: PatternEdge) -> "QuantifiedGraphPattern":
        """``Q⁺ᵉ``: the pattern with negated edge *edge* turned into ``≥ 1``."""
        if not edge.is_negated:
            raise PatternError(f"edge {edge} is not negated; cannot positify")
        key = edge.key
        if key not in self._quantifiers:
            raise PatternError(f"edge {edge} is not in the pattern")
        result = self.copy(name=f"{self.name}+{edge.label}")
        result.set_quantifier(edge.source, edge.target, edge.label,
                              edge.quantifier.positified())
        return result

    def positified_pi_patterns(self) -> List[Tuple[PatternEdge, "QuantifiedGraphPattern"]]:
        """``[(e, Π(Q⁺ᵉ)) for e in E⁻Q]`` — the patterns subtracted in the semantics."""
        return [(edge, self.positify(edge).pi()) for edge in self.negated_edges()]

    # ----------------------------------------------------------------- metrics

    def radius(self) -> int:
        """Longest shortest undirected distance from the focus to any pattern node."""
        distances = bfs_levels(self.graph, self.focus, directed=False)
        unreached = self.graph.num_nodes - len(distances)
        if unreached:
            raise PatternError(
                "pattern is not connected: some nodes are unreachable from the focus"
            )
        return max(distances.values()) if distances else 0

    def is_connected(self) -> bool:
        """Whether every pattern node is (undirectedly) reachable from the focus."""
        if self.graph.num_nodes == 0:
            return False
        return len(bfs_levels(self.graph, self.focus, directed=False)) == self.graph.num_nodes

    # -------------------------------------------------------------- validation

    def _simple_paths_from(self, start: NodeId) -> Iterator[List[EdgeKey]]:
        """Yield every maximal *directed* simple path (as a list of edge keys).

        The paper's structural restriction counts quantifiers along simple
        paths of the pattern; its own example ``Q5`` carries two negated edges
        on different outgoing branches, so the paths are followed along edge
        direction (a path never revisits a node).
        """
        adjacency: Dict[NodeId, List[Tuple[NodeId, EdgeKey]]] = {n: [] for n in self.nodes()}
        for edge in self.edges():
            adjacency[edge.source].append((edge.target, edge.key))

        def extend(node: NodeId, visited: Set[NodeId], path: List[EdgeKey]) -> Iterator[List[EdgeKey]]:
            extended = False
            for neighbor, key in adjacency[node]:
                if neighbor in visited or key in path:
                    continue
                extended = True
                yield from extend(neighbor, visited | {neighbor}, path + [key])
            if not extended and path:
                yield path

        yield from extend(start, {start}, [])

    def validate(self, max_quantified_per_path: int = 2) -> None:
        """Enforce the structural restrictions of the paper's Remark (Section 2.2).

        * the pattern must be connected and contain the focus;
        * on every simple path there are at most ``max_quantified_per_path``
          (the paper's constant ``l``, empirically ≤ 2) non-existential
          quantifiers;
        * on every simple path there is at most one negated edge (no "double
          negation").

        Raises :class:`PatternValidationError` when violated.
        """
        if self.graph.num_nodes == 0:
            raise PatternValidationError("the pattern has no nodes")
        if self._focus is None:
            raise PatternValidationError("the pattern has no query focus")
        if not self.is_connected():
            raise PatternValidationError("the pattern must be connected")
        quantifier_by_key = {edge.key: edge.quantifier for edge in self.edges()}
        for start in self.nodes():
            for path in self._simple_paths_from(start):
                non_existential = 0
                negated = 0
                for key in path:
                    quantifier = quantifier_by_key[key]
                    if not quantifier.is_existential:
                        non_existential += 1
                    if quantifier.is_negation:
                        negated += 1
                if non_existential > max_quantified_per_path:
                    raise PatternValidationError(
                        f"a simple path carries {non_existential} non-existential "
                        f"quantifiers (limit {max_quantified_per_path})"
                    )
                if negated > 1:
                    raise PatternValidationError(
                        "a simple path carries more than one negated edge "
                        "(double negation is excluded)"
                    )

    # ----------------------------------------------------------------- copying

    def copy(self, name: Optional[str] = None) -> "QuantifiedGraphPattern":
        clone = QuantifiedGraphPattern(name=name or self.name)
        for node in self.nodes():
            clone.add_node(node, self.node_label(node))
        for edge in self.edges():
            clone.add_edge(edge.source, edge.target, edge.label, edge.quantifier)
        if self._focus is not None:
            clone.set_focus(self._focus)
        return clone

    def relabel_nodes(self, mapping: Dict[NodeId, NodeId]) -> "QuantifiedGraphPattern":
        """A copy with node ids renamed according to *mapping* (missing ids kept)."""
        clone = QuantifiedGraphPattern(name=self.name)
        for node in self.nodes():
            clone.add_node(mapping.get(node, node), self.node_label(node))
        for edge in self.edges():
            clone.add_edge(
                mapping.get(edge.source, edge.source),
                mapping.get(edge.target, edge.target),
                edge.label,
                edge.quantifier,
            )
        if self._focus is not None:
            clone.set_focus(mapping.get(self._focus, self._focus))
        return clone

    # ---------------------------------------------------------------- protocol

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantifiedGraphPattern):
            return NotImplemented
        if self._focus != other._focus:
            return False
        if {n: self.node_label(n) for n in self.nodes()} != {
            n: other.node_label(n) for n in other.nodes()
        }:
            return False
        return self._quantifiers == other._quantifiers

    def __hash__(self) -> int:  # patterns are mutable during construction
        return id(self)

    def __repr__(self) -> str:
        signature = self.size_signature() if self.num_nodes else (0, 0, 0.0, 0)
        return (
            f"QuantifiedGraphPattern(name={self.name!r}, nodes={signature[0]}, "
            f"edges={signature[1]}, negated={signature[3]})"
        )

    def describe(self) -> str:
        """Multi-line human-readable description (used by examples and reports)."""
        lines = [f"QGP {self.name} (focus: {self._focus!r})"]
        for node in sorted(self.nodes(), key=str):
            lines.append(f"  node {node!r}: {self.node_label(node)}")
        for edge in self.edges():
            lines.append(f"  edge {edge}")
        return "\n".join(lines)
