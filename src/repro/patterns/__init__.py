"""Quantified graph patterns: model, builder, DSL, workload generator, reductions."""

from repro.patterns.builder import PatternBuilder
from repro.patterns.generator import (
    FrequentEdge,
    generate_pattern,
    generate_workload,
    mine_frequent_edges,
    mine_frequent_paths,
)
from repro.patterns.parser import parse_pattern, parse_quantifier, pattern_to_text
from repro.patterns.qgp import EdgeKey, PatternEdge, QuantifiedGraphPattern
from repro.patterns.quantifier import CountingQuantifier
from repro.patterns.transform import expand_numeric_to_conventional, ratio_to_numeric

__all__ = [
    "CountingQuantifier",
    "QuantifiedGraphPattern",
    "PatternEdge",
    "EdgeKey",
    "PatternBuilder",
    "parse_pattern",
    "parse_quantifier",
    "pattern_to_text",
    "FrequentEdge",
    "mine_frequent_edges",
    "mine_frequent_paths",
    "generate_pattern",
    "generate_workload",
    "expand_numeric_to_conventional",
    "ratio_to_numeric",
]
