"""Plain-text table rendering for benchmark reports.

Every benchmark in ``benchmarks/`` prints the rows / series of the figure it
reproduces.  The helpers here render aligned ASCII tables without any third
party dependency, so reports look the same on every machine and can be diffed
against ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["render_table", "render_series", "render_kv"]


def _stringify(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render *rows* under *headers* as an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        padded = [cell.ljust(w) for cell, w in zip(row, widths)]
        lines.append(" | ".join(padded).rstrip())
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render an (x, y) series as the two-column table used for figure data."""
    return render_table(["x", name], zip(xs, ys))


def render_kv(mapping: Mapping[str, object], title: str = "") -> str:
    """Render a mapping as an aligned ``key: value`` block."""
    if not mapping:
        return title
    width = max(len(str(key)) for key in mapping)
    lines = [title] if title else []
    for key, value in mapping.items():
        lines.append(f"{str(key).ljust(width)} : {_stringify(value)}")
    return "\n".join(lines)
