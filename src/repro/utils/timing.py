"""Lightweight timing utilities used by the experiment harness.

The paper reports wall-clock response times for each algorithm and figure.
:class:`Timer` is a context manager that records elapsed seconds, and
:class:`StopwatchRegistry` aggregates named phases (partition time, matching
time, verification time) so that a benchmark can report the same breakdown the
paper discusses (e.g. DPar time separate from PQMatch time in Fig. 8(d)/(e)).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional
from contextlib import contextmanager

__all__ = ["Timer", "StopwatchRegistry", "format_seconds"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: Optional[float] = None
        self.end: Optional[float] = None

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds elapsed between entering and leaving the context.

        If the timer is still running, returns the time elapsed so far.
        """
        if self.start is None:
            return 0.0
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start


@dataclass
class StopwatchRegistry:
    """Accumulates elapsed time for named phases.

    The registry is additive: timing the same phase several times accumulates
    the durations, which matches how a multi-query benchmark reports the total
    time per algorithm.
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[phase] = self.totals.get(phase, 0.0) + elapsed
            self.counts[phase] = self.counts.get(phase, 0) + 1

    def total(self, phase: str) -> float:
        """Total accumulated seconds for *phase* (0.0 if never measured)."""
        return self.totals.get(phase, 0.0)

    def mean(self, phase: str) -> float:
        """Mean seconds per measurement of *phase* (0.0 if never measured)."""
        count = self.counts.get(phase, 0)
        if count == 0:
            return 0.0
        return self.totals[phase] / count

    def as_dict(self) -> Dict[str, float]:
        """A copy of the accumulated totals, keyed by phase name."""
        return dict(self.totals)

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()


def format_seconds(seconds: float) -> str:
    """Human-readable rendering of a duration (``1.234 s`` / ``12.3 ms``)."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.0f} µs"
