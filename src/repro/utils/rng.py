"""Deterministic random-number helpers.

Every stochastic component of the library (graph generators, pattern
generators, workload builders) accepts either an integer seed or an existing
:class:`random.Random` instance.  Centralising the coercion here keeps the
rest of the code free of ``isinstance`` checks and guarantees that passing the
same seed twice produces identical graphs, patterns and workloads — a property
the experiment harness and the property-based tests rely on.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, TypeVar, Union

__all__ = ["ensure_rng", "SeedLike", "weighted_choice", "sample_without_replacement"]

SeedLike = Union[None, int, random.Random]

T = TypeVar("T")


def ensure_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for *seed*.

    ``None`` produces a fresh, nondeterministic generator; an ``int`` produces
    a seeded generator; an existing ``Random`` instance is returned unchanged
    so that a caller can thread one generator through several components.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one element of *items* with probability proportional to *weights*.

    Raises ``ValueError`` when the sequences are empty or of different length,
    or when all weights are zero.
    """
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    total = float(sum(weights))
    if total <= 0.0:
        raise ValueError("weights must sum to a positive value")
    threshold = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if cumulative >= threshold:
            return item
    return items[-1]


def sample_without_replacement(
    rng: random.Random, items: Sequence[T], k: int, exclude: Optional[set] = None
) -> list[T]:
    """Sample up to *k* distinct elements of *items*, skipping *exclude*.

    Unlike :func:`random.sample` this degrades gracefully: if fewer than *k*
    eligible elements exist, all of them are returned (in random order).
    """
    if exclude:
        pool = [item for item in items if item not in exclude]
    else:
        pool = list(items)
    if k >= len(pool):
        rng.shuffle(pool)
        return pool
    return rng.sample(pool, k)
