"""Shared utilities: errors, deterministic RNG, timing, counters, tables."""

from repro.utils.errors import (
    EdgeNotFoundError,
    GraphError,
    MatchingError,
    NodeNotFoundError,
    ParseError,
    PartitionError,
    PatternError,
    PatternValidationError,
    QuantifierError,
    ReproError,
    RuleError,
    SnapshotError,
    StaleIndexError,
)
from repro.utils.counters import WorkCounter
from repro.utils.rng import ensure_rng, sample_without_replacement, weighted_choice
from repro.utils.tables import render_kv, render_series, render_table
from repro.utils.timing import StopwatchRegistry, Timer, format_seconds

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "StaleIndexError",
    "SnapshotError",
    "PatternError",
    "QuantifierError",
    "PatternValidationError",
    "MatchingError",
    "PartitionError",
    "RuleError",
    "ParseError",
    "WorkCounter",
    "ensure_rng",
    "weighted_choice",
    "sample_without_replacement",
    "Timer",
    "StopwatchRegistry",
    "format_seconds",
    "render_table",
    "render_series",
    "render_kv",
]
