"""Exception hierarchy for the ``repro`` library.

All library-specific failures derive from :class:`ReproError` so that callers
can catch a single base class.  Sub-classes are deliberately fine-grained: the
matching engines, the pattern model and the parallel layer each raise their
own error type, which makes test assertions and user-facing error handling
precise.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "StaleIndexError",
    "SnapshotError",
    "DeltaError",
    "PatternError",
    "QuantifierError",
    "PatternValidationError",
    "MatchingError",
    "PartitionError",
    "ServiceError",
    "Overloaded",
    "RuleError",
    "ParseError",
]


class ReproError(Exception):
    """Base class for every error raised by the library."""


class GraphError(ReproError):
    """Raised for invalid operations on :class:`repro.graph.PropertyGraph`."""


class NodeNotFoundError(GraphError, KeyError):
    """Raised when a node identifier is not present in the graph."""

    def __init__(self, node):
        super().__init__(node)
        self.node = node

    def __str__(self) -> str:  # KeyError quotes its argument; keep it readable.
        return f"node {self.node!r} is not in the graph"


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an edge (source, target, label) is not present in the graph."""

    def __init__(self, source, target, label=None):
        super().__init__((source, target, label))
        self.source = source
        self.target = target
        self.label = label

    def __str__(self) -> str:
        if self.label is None:
            return f"edge ({self.source!r} -> {self.target!r}) is not in the graph"
        return (
            f"edge ({self.source!r} -[{self.label}]-> {self.target!r}) "
            "is not in the graph"
        )


class StaleIndexError(GraphError):
    """Raised when a :class:`repro.index.GraphIndex` snapshot is used after the
    source graph has mutated past the snapshot's version counter."""


class DeltaError(GraphError):
    """Raised when a :class:`repro.delta.GraphDelta` is malformed or does not
    apply cleanly to the graph it targets (missing endpoints, duplicate ops,
    inserts of existing nodes/edges)."""


class SnapshotError(GraphError):
    """Raised by the binary snapshot wire format (:mod:`repro.index.serialize`)
    on malformed input: bad magic, unsupported format version, checksum or
    length mismatch, or a snapshot bound to a graph it does not describe."""


class PatternError(ReproError):
    """Base class for errors in the quantified-graph-pattern model."""


class QuantifierError(PatternError, ValueError):
    """Raised for malformed counting quantifiers (bad operator, bad threshold)."""


class PatternValidationError(PatternError, ValueError):
    """Raised when a QGP violates the structural restrictions of the paper.

    The paper (Section 2.2, *Remark*) requires that on any simple path of the
    pattern there are at most ``l`` non-existential quantifiers and at most one
    negated edge ("no double negation").
    """


class MatchingError(ReproError):
    """Raised by the matching engines for invalid inputs or inconsistent state."""


class PartitionError(ReproError):
    """Raised by the d-hop preserving partition layer."""


class ServiceError(ReproError):
    """Raised by the serving tier (:mod:`repro.service`, :mod:`repro.serve`)
    for invalid use of a service façade (submitting to a closed service,
    malformed admission configuration, ...)."""


class Overloaded(ServiceError):
    """Raised by admission control when a bounded queue is full and the
    configured policy is to reject rather than block.  Callers should treat
    it as retryable backpressure, not a bug."""


class RuleError(ReproError):
    """Raised by the QGAR layer (malformed rules, overlapping consequent, ...)."""


class ParseError(PatternError, ValueError):
    """Raised by the textual pattern parser on malformed input."""
