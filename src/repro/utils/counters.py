"""Work counters shared by the matching engines.

The paper's analysis (Section 4.2, Proposition 6) measures incremental
matching by the *number of verifications* performed, and the parallel analysis
(Section 5) reasons about per-fragment work.  :class:`WorkCounter` is the one
place all engines report that work, which lets tests assert optimality claims
and lets the simulated cluster compute makespans from real measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["WorkCounter"]


@dataclass
class WorkCounter:
    """Counts the basic units of work performed during matching.

    Attributes
    ----------
    verifications:
        Number of candidate verifications (full or partial isomorphism checks
        anchored at a candidate node).  This is the unit the paper uses for
        incremental optimality.
    extensions:
        Number of times a partial match was extended by one (pattern node,
        graph node) pair — a proxy for search-tree size.
    quantifier_checks:
        Number of counting-quantifier evaluations.
    candidates_pruned:
        Candidates removed by the pruning rules before verification.
    """

    verifications: int = 0
    extensions: int = 0
    quantifier_checks: int = 0
    candidates_pruned: int = 0
    extras: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment an ad-hoc named counter stored in :attr:`extras`."""
        self.extras[name] = self.extras.get(name, 0) + amount

    def merge(self, other: "WorkCounter") -> None:
        """Add *other*'s counts into this counter (used to aggregate workers)."""
        self.verifications += other.verifications
        self.extensions += other.extensions
        self.quantifier_checks += other.quantifier_checks
        self.candidates_pruned += other.candidates_pruned
        for key, value in other.extras.items():
            self.extras[key] = self.extras.get(key, 0) + value

    def total_work(self) -> int:
        """A single scalar summarising the work (used for makespan estimates)."""
        return self.verifications + self.extensions + self.quantifier_checks

    def as_dict(self) -> Dict[str, int]:
        data = {
            "verifications": self.verifications,
            "extensions": self.extensions,
            "quantifier_checks": self.quantifier_checks,
            "candidates_pruned": self.candidates_pruned,
        }
        data.update(self.extras)
        return data

    def copy(self) -> "WorkCounter":
        clone = WorkCounter(
            verifications=self.verifications,
            extensions=self.extensions,
            quantifier_checks=self.quantifier_checks,
            candidates_pruned=self.candidates_pruned,
        )
        clone.extras = dict(self.extras)
        return clone
