"""Graph substrate: property graphs, traversal, simulation, generators and I/O."""

from repro.graph.digraph import Edge, Label, NodeId, PropertyGraph
from repro.graph.generators import (
    default_label_alphabet,
    random_labeled_graph,
    ring_of_cliques,
    small_world_social_graph,
)
from repro.graph.io import (
    graph_from_json,
    graph_to_json,
    read_edge_list,
    read_json,
    read_json_with_snapshot,
    write_edge_list,
    write_json,
    write_json_with_snapshot,
)
from repro.graph.simulation import (
    dual_simulation_relation,
    refine_candidates,
    simulation_relation,
)
from repro.graph.statistics import (
    GraphStatistics,
    degree_histogram,
    graph_statistics,
    neighborhood_size_bound,
)
from repro.graph.traversal import (
    bfs_levels,
    connected_components,
    d_hop_neighborhood,
    eccentricity_from,
    is_weakly_connected,
    nodes_within_hops,
    undirected_shortest_path_length,
)

__all__ = [
    "PropertyGraph",
    "Edge",
    "Label",
    "NodeId",
    "small_world_social_graph",
    "random_labeled_graph",
    "ring_of_cliques",
    "default_label_alphabet",
    "bfs_levels",
    "nodes_within_hops",
    "d_hop_neighborhood",
    "undirected_shortest_path_length",
    "eccentricity_from",
    "connected_components",
    "is_weakly_connected",
    "simulation_relation",
    "dual_simulation_relation",
    "refine_candidates",
    "GraphStatistics",
    "graph_statistics",
    "degree_histogram",
    "neighborhood_size_bound",
    "write_edge_list",
    "read_edge_list",
    "graph_to_json",
    "graph_from_json",
    "write_json",
    "read_json",
    "write_json_with_snapshot",
    "read_json_with_snapshot",
]
