"""Graph traversal primitives: BFS, d-hop neighbourhoods, radius, components.

The parallel layer of the paper is built on *d-hop preserving* partitions
(Section 5.2): every node's d-hop neighbourhood ``Nd(v)`` — the subgraph
induced by nodes within *d* hops of *v*, ignoring edge direction — must reside
in a single fragment.  The QGP radius (longest shortest distance from the query
focus to any pattern node) decides which *d* suffices for a query, so both
operations live here and are shared by the partitioner and the coordinator.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set

from repro.graph.digraph import PropertyGraph
from repro.utils.errors import NodeNotFoundError

__all__ = [
    "bfs_levels",
    "nodes_within_hops",
    "d_hop_neighborhood",
    "undirected_shortest_path_length",
    "eccentricity_from",
    "connected_components",
    "is_weakly_connected",
]

NodeId = Hashable


def bfs_levels(
    graph: PropertyGraph,
    source: NodeId,
    max_depth: Optional[int] = None,
    directed: bool = False,
) -> Dict[NodeId, int]:
    """Breadth-first distances from *source*.

    Parameters
    ----------
    graph:
        The graph to traverse.
    source:
        Start node (must exist).
    max_depth:
        Stop expanding beyond this distance when given.
    directed:
        When ``True``, follow only outgoing edges; otherwise treat edges as
        undirected, which is the notion of "within d hops" used by the paper's
        partition scheme.

    Returns
    -------
    dict
        Mapping of reached node -> hop distance (``source`` maps to 0).
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances: Dict[NodeId, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        if directed:
            neighbors: Iterable[NodeId] = graph.successors(node)
        else:
            neighbors = graph.neighbors(node)
        for neighbor in neighbors:
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
    return distances


def nodes_within_hops(graph: PropertyGraph, source: NodeId, hops: int) -> Set[NodeId]:
    """The set of nodes within *hops* undirected hops of *source* (inclusive)."""
    return set(bfs_levels(graph, source, max_depth=hops, directed=False))


def d_hop_neighborhood(graph: PropertyGraph, source: NodeId, d: int) -> PropertyGraph:
    """``Nd(v)``: the subgraph induced by nodes within *d* hops of *source*.

    This is the unit the d-hop preserving partition replicates onto fragments,
    and the unit whose total size appears in the parallel-scalability condition
    Σ|Nd(v)| ≤ Cd · |G| / n of Theorem 7.
    """
    return graph.induced_subgraph(nodes_within_hops(graph, source, d), name=f"N{d}({source})")


def undirected_shortest_path_length(
    graph: PropertyGraph, source: NodeId, target: NodeId
) -> Optional[int]:
    """Length of the shortest undirected path from *source* to *target*.

    Returns ``None`` when no path exists.
    """
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return 0
    distances = bfs_levels(graph, source, directed=False)
    return distances.get(target)


def eccentricity_from(graph: PropertyGraph, source: NodeId) -> int:
    """Largest undirected hop distance from *source* to any reachable node.

    Applied to a pattern with the query focus as *source*, this is the QGP
    *radius* used to pick the partition parameter *d* (Section 5.2).
    """
    distances = bfs_levels(graph, source, directed=False)
    return max(distances.values()) if distances else 0


def connected_components(graph: PropertyGraph) -> List[Set[NodeId]]:
    """Weakly connected components, largest first."""
    seen: Set[NodeId] = set()
    components: List[Set[NodeId]] = []
    for node in graph.nodes():
        if node in seen:
            continue
        component = set(bfs_levels(graph, node, directed=False))
        seen.update(component)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def is_weakly_connected(graph: PropertyGraph) -> bool:
    """Whether the graph has a single weakly connected component (or is empty)."""
    if graph.num_nodes == 0:
        return True
    return len(connected_components(graph)) == 1
