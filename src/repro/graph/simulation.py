"""Graph simulation (Henzinger–Henzinger–Kopke style) on labeled graphs.

QMatch uses graph simulation as a *pre-filter* (paper Appendix B, Lemma 13): a
graph node ``v`` can only match a pattern node ``u`` via subgraph isomorphism
if ``v`` simulates ``u``, i.e. ``v`` carries ``u``'s label and, for every child
``u'`` of ``u`` reached by an edge labeled ``l``, ``v`` has some child ``v'``
reached by an ``l``-labeled edge such that ``v'`` simulates ``u'``.  Computing
the (unique, maximal) simulation relation is polynomial, so it is a cheap way
to shrink candidate sets before the exponential search starts.

The implementation below runs a worklist fixpoint: start from label-compatible
candidate sets and repeatedly remove nodes that lose support for some pattern
edge, until nothing changes.  ``dual=True`` additionally requires support for
*incoming* pattern edges (dual simulation), which prunes more aggressively and
is what the candidate filter uses by default.

Two interchangeable execution paths compute the fixpoint:

* the **dict path** probes :class:`PropertyGraph` adjacency directly (the
  original implementation, kept as the ``use_index=False`` fallback);
* the **index path** (default) compiles the graph to a
  :class:`repro.index.GraphIndex` snapshot and runs the same worklist over
  interned CSR rows, seeding the candidate pools from the compiled label
  index intersected with the O(1) neighbourhood-signature pre-filter.

Because the maximal (dual) simulation relation contained in a given seed is
*unique*, and the signature filter only removes nodes the first refinement
round would remove anyway, both paths return exactly the same relations —
a property the equivalence tests assert on every example and generated graph.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Set, TYPE_CHECKING

from repro.graph.digraph import PropertyGraph

if TYPE_CHECKING:  # pragma: no cover - only for type checkers
    from repro.patterns.qgp import QuantifiedGraphPattern

__all__ = ["simulation_relation", "dual_simulation_relation", "refine_candidates"]

NodeId = Hashable


def _label_candidates(pattern_graph: PropertyGraph, graph: PropertyGraph) -> Dict[NodeId, Set[NodeId]]:
    return {
        u: graph.nodes_with_label(pattern_graph.node_label(u))
        for u in pattern_graph.nodes()
    }


def _refine(
    pattern_graph: PropertyGraph,
    graph: PropertyGraph,
    candidates: Dict[NodeId, Set[NodeId]],
    dual: bool,
) -> Dict[NodeId, Set[NodeId]]:
    """Iteratively remove unsupported candidates until a fixpoint is reached."""
    pattern_nodes = list(pattern_graph.nodes())
    worklist = deque(pattern_nodes)
    in_worklist = set(pattern_nodes)

    def schedule(u: NodeId) -> None:
        if u not in in_worklist:
            worklist.append(u)
            in_worklist.add(u)

    while worklist:
        u = worklist.popleft()
        in_worklist.discard(u)
        survivors: Set[NodeId] = set()
        out_requirements = [
            (label, u_child)
            for label in pattern_graph.out_edge_labels(u)
            for u_child in pattern_graph.successors(u, label)
        ]
        in_requirements = []
        if dual:
            in_requirements = [
                (label, u_parent)
                for u_parent in pattern_graph.predecessors(u)
                for label in pattern_graph.edge_labels(u_parent, u)
            ]
        for v in candidates[u]:
            ok = True
            for label, u_child in out_requirements:
                children = graph.successors(v, label)
                if not children or children.isdisjoint(candidates[u_child]):
                    ok = False
                    break
            if ok and dual:
                for label, u_parent in in_requirements:
                    parents = graph.predecessors(v, label)
                    if not parents or parents.isdisjoint(candidates[u_parent]):
                        ok = False
                        break
            if ok:
                survivors.add(v)
        if survivors != candidates[u]:
            candidates[u] = survivors
            # Removing candidates of u can invalidate candidates of its
            # pattern neighbours, so re-schedule them.
            for neighbor in pattern_graph.predecessors(u) | pattern_graph.successors(u):
                schedule(neighbor)
    return candidates


def _refine_indexed(
    pattern_graph: PropertyGraph,
    graph_index,
    candidates: Dict[NodeId, Set[int]],
    dual: bool,
) -> Dict[NodeId, Set[int]]:
    """The worklist fixpoint of :func:`_refine`, over interned CSR rows.

    *candidates* maps pattern nodes to sets of **dense node ids**; support
    checks walk contiguous ``array('i')`` neighbour rows instead of building
    per-probe set copies, which is where the compiled path wins its time.
    """
    pattern_nodes = list(pattern_graph.nodes())
    worklist = deque(pattern_nodes)
    in_worklist = set(pattern_nodes)
    out_csr, in_csr = graph_index.out, graph_index.inc
    edge_label_id = graph_index.edge_label_id

    out_requirements = {
        u: [
            (edge_label_id(label), u_child)
            for label in pattern_graph.out_edge_labels(u)
            for u_child in pattern_graph.successors(u, label)
        ]
        for u in pattern_nodes
    }
    in_requirements = {
        u: (
            [
                (edge_label_id(label), u_parent)
                for u_parent in pattern_graph.predecessors(u)
                for label in pattern_graph.edge_labels(u_parent, u)
            ]
            if dual
            else []
        )
        for u in pattern_nodes
    }

    def schedule(u: NodeId) -> None:
        if u not in in_worklist:
            worklist.append(u)
            in_worklist.add(u)

    def supported(csr, label_id: int, node_id: int, pool: Set[int]) -> bool:
        if label_id < 0 or not pool:
            return False
        indices, start, end = csr.row(label_id, node_id)
        for position in range(start, end):
            if indices[position] in pool:
                return True
        return False

    while worklist:
        u = worklist.popleft()
        in_worklist.discard(u)
        u_out, u_in = out_requirements[u], in_requirements[u]
        survivors: Set[int] = set()
        for v in candidates[u]:
            ok = True
            for label_id, u_child in u_out:
                if not supported(out_csr, label_id, v, candidates[u_child]):
                    ok = False
                    break
            if ok:
                for label_id, u_parent in u_in:
                    if not supported(in_csr, label_id, v, candidates[u_parent]):
                        ok = False
                        break
            if ok:
                survivors.add(v)
        if survivors != candidates[u]:
            candidates[u] = survivors
            for neighbor in pattern_graph.predecessors(u) | pattern_graph.successors(u):
                schedule(neighbor)
    return candidates


def _indexed_relation(
    pattern_graph: PropertyGraph, graph: PropertyGraph, dual: bool
) -> Dict[NodeId, Set[NodeId]]:
    from repro.index.snapshot import GraphIndex

    graph_index = GraphIndex.for_graph(graph)
    candidates = graph_index.label_candidates_ids(pattern_graph, dual=dual)
    refined = _refine_indexed(pattern_graph, graph_index, candidates, dual=dual)
    return {u: graph_index.to_nodes(ids) for u, ids in refined.items()}


def simulation_relation(
    pattern_graph: PropertyGraph, graph: PropertyGraph, use_index: bool = True
) -> Dict[NodeId, Set[NodeId]]:
    """The maximal (forward) simulation relation, per pattern node.

    Returns a mapping ``pattern node -> set of graph nodes that simulate it``.
    Any pattern node mapped to an empty set cannot be matched by isomorphism
    either, so the whole pattern has no match in *graph*.  ``use_index=False``
    selects the dict-backed fallback path (identical result).
    """
    if use_index:
        return _indexed_relation(pattern_graph, graph, dual=False)
    candidates = _label_candidates(pattern_graph, graph)
    return _refine(pattern_graph, graph, candidates, dual=False)


def dual_simulation_relation(
    pattern_graph: PropertyGraph, graph: PropertyGraph, use_index: bool = True
) -> Dict[NodeId, Set[NodeId]]:
    """The maximal dual simulation relation (children and parents must be supported).

    Dual simulation is strictly stronger than forward simulation and still
    polynomial, so it is the default candidate pre-filter in QMatch.
    ``use_index=False`` selects the dict-backed fallback path (identical
    result).
    """
    if use_index:
        return _indexed_relation(pattern_graph, graph, dual=True)
    candidates = _label_candidates(pattern_graph, graph)
    return _refine(pattern_graph, graph, candidates, dual=True)


def refine_candidates(
    pattern_graph: PropertyGraph,
    graph: PropertyGraph,
    candidates: Dict[NodeId, Set[NodeId]],
    dual: bool = True,
    use_index: bool = True,
) -> Dict[NodeId, Set[NodeId]]:
    """Run the (dual) simulation fixpoint starting from *candidates*.

    Used by the incremental step of QMatch: the cached candidate pools of
    ``Π(Q)`` are refined against the structure of the positified pattern
    ``Π(Q⁺ᵉ)`` without rebuilding them from the whole graph.  The result is
    always a subset of the input pools, and still a superset of every true
    isomorphic image (the filter is sound).
    """
    if use_index:
        from repro.index.snapshot import GraphIndex
        from repro.utils.errors import NodeNotFoundError

        # Unlike the label-derived seeds of ``_indexed_relation``, the pools
        # here are caller-supplied and may contain nodes whose labels differ
        # from the pattern's, so the signature pre-filter (which also checks
        # neighbour *labels*) would prune candidates the dict fixpoint keeps.
        # Only the CSR worklist runs here; support is membership in the
        # supplied pools, exactly as in the dict path.
        graph_index = GraphIndex.for_graph(graph)
        node_id = graph_index.node_id
        pattern_nodes = set(pattern_graph.nodes())
        working_ids: Dict[NodeId, Set[int]] = {}
        passthrough: Dict[NodeId, Set[NodeId]] = {}
        unknown: Dict[NodeId, Set[NodeId]] = {}
        for pattern_node, members in candidates.items():
            if pattern_node not in pattern_nodes:
                # Keys outside the pattern graph carry no requirements; the
                # dict path's worklist never visits them, so they must come
                # back verbatim (including members unknown to the graph).
                passthrough[pattern_node] = set(members)
                continue
            constrained = bool(pattern_graph.successors(pattern_node)) or (
                dual and bool(pattern_graph.predecessors(pattern_node))
            )
            ids: Set[int] = set()
            ghosts: Set[NodeId] = set()
            for member in members:
                dense = node_id(member)
                if dense >= 0:
                    ids.add(dense)
                elif constrained:
                    # The dict path probes every candidate of a constrained
                    # pattern node, so a member missing from the graph raises
                    # there too.
                    raise NodeNotFoundError(member)
                else:
                    # Requirement-free pools are never probed: unknown members
                    # survive verbatim (and, having no graph edges, they can
                    # never support a neighbour either way).
                    ghosts.add(member)
            working_ids[pattern_node] = ids
            if ghosts:
                unknown[pattern_node] = ghosts
        for pattern_node in pattern_graph.nodes():
            working_ids.setdefault(pattern_node, set())
        refined = _refine_indexed(pattern_graph, graph_index, working_ids, dual=dual)
        result = {u: graph_index.to_nodes(ids) for u, ids in refined.items()}
        for pattern_node, ghosts in unknown.items():
            result[pattern_node] |= ghosts
        result.update(passthrough)
        return result
    working = {node: set(members) for node, members in candidates.items()}
    for node in pattern_graph.nodes():
        working.setdefault(node, set())
    return _refine(pattern_graph, graph, working, dual=dual)
