"""Graph simulation (Henzinger–Henzinger–Kopke style) on labeled graphs.

QMatch uses graph simulation as a *pre-filter* (paper Appendix B, Lemma 13): a
graph node ``v`` can only match a pattern node ``u`` via subgraph isomorphism
if ``v`` simulates ``u``, i.e. ``v`` carries ``u``'s label and, for every child
``u'`` of ``u`` reached by an edge labeled ``l``, ``v`` has some child ``v'``
reached by an ``l``-labeled edge such that ``v'`` simulates ``u'``.  Computing
the (unique, maximal) simulation relation is polynomial, so it is a cheap way
to shrink candidate sets before the exponential search starts.

The implementation below runs a worklist fixpoint: start from label-compatible
candidate sets and repeatedly remove nodes that lose support for some pattern
edge, until nothing changes.  ``dual=True`` additionally requires support for
*incoming* pattern edges (dual simulation), which prunes more aggressively and
is what the candidate filter uses by default.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Set, TYPE_CHECKING

from repro.graph.digraph import PropertyGraph

if TYPE_CHECKING:  # pragma: no cover - only for type checkers
    from repro.patterns.qgp import QuantifiedGraphPattern

__all__ = ["simulation_relation", "dual_simulation_relation", "refine_candidates"]

NodeId = Hashable


def _label_candidates(pattern_graph: PropertyGraph, graph: PropertyGraph) -> Dict[NodeId, Set[NodeId]]:
    return {
        u: set(graph.nodes_with_label(pattern_graph.node_label(u)))
        for u in pattern_graph.nodes()
    }


def _refine(
    pattern_graph: PropertyGraph,
    graph: PropertyGraph,
    candidates: Dict[NodeId, Set[NodeId]],
    dual: bool,
) -> Dict[NodeId, Set[NodeId]]:
    """Iteratively remove unsupported candidates until a fixpoint is reached."""
    pattern_nodes = list(pattern_graph.nodes())
    worklist = deque(pattern_nodes)
    in_worklist = set(pattern_nodes)

    def schedule(u: NodeId) -> None:
        if u not in in_worklist:
            worklist.append(u)
            in_worklist.add(u)

    while worklist:
        u = worklist.popleft()
        in_worklist.discard(u)
        survivors: Set[NodeId] = set()
        out_requirements = [
            (label, u_child)
            for label in pattern_graph.out_edge_labels(u)
            for u_child in pattern_graph.successors(u, label)
        ]
        in_requirements = []
        if dual:
            in_requirements = [
                (label, u_parent)
                for u_parent in pattern_graph.predecessors(u)
                for label in pattern_graph.edge_labels(u_parent, u)
            ]
        for v in candidates[u]:
            ok = True
            for label, u_child in out_requirements:
                children = graph.successors(v, label)
                if not children or children.isdisjoint(candidates[u_child]):
                    ok = False
                    break
            if ok and dual:
                for label, u_parent in in_requirements:
                    parents = graph.predecessors(v, label)
                    if not parents or parents.isdisjoint(candidates[u_parent]):
                        ok = False
                        break
            if ok:
                survivors.add(v)
        if survivors != candidates[u]:
            candidates[u] = survivors
            # Removing candidates of u can invalidate candidates of its
            # pattern neighbours, so re-schedule them.
            for neighbor in pattern_graph.predecessors(u) | pattern_graph.successors(u):
                schedule(neighbor)
    return candidates


def simulation_relation(
    pattern_graph: PropertyGraph, graph: PropertyGraph
) -> Dict[NodeId, Set[NodeId]]:
    """The maximal (forward) simulation relation, per pattern node.

    Returns a mapping ``pattern node -> set of graph nodes that simulate it``.
    Any pattern node mapped to an empty set cannot be matched by isomorphism
    either, so the whole pattern has no match in *graph*.
    """
    candidates = _label_candidates(pattern_graph, graph)
    return _refine(pattern_graph, graph, candidates, dual=False)


def dual_simulation_relation(
    pattern_graph: PropertyGraph, graph: PropertyGraph
) -> Dict[NodeId, Set[NodeId]]:
    """The maximal dual simulation relation (children and parents must be supported).

    Dual simulation is strictly stronger than forward simulation and still
    polynomial, so it is the default candidate pre-filter in QMatch.
    """
    candidates = _label_candidates(pattern_graph, graph)
    return _refine(pattern_graph, graph, candidates, dual=True)


def refine_candidates(
    pattern_graph: PropertyGraph,
    graph: PropertyGraph,
    candidates: Dict[NodeId, Set[NodeId]],
    dual: bool = True,
) -> Dict[NodeId, Set[NodeId]]:
    """Run the (dual) simulation fixpoint starting from *candidates*.

    Used by the incremental step of QMatch: the cached candidate pools of
    ``Π(Q)`` are refined against the structure of the positified pattern
    ``Π(Q⁺ᵉ)`` without rebuilding them from the whole graph.  The result is
    always a subset of the input pools, and still a superset of every true
    isomorphic image (the filter is sound).
    """
    working = {node: set(members) for node, members in candidates.items()}
    for node in pattern_graph.nodes():
        working.setdefault(node, set())
    return _refine(pattern_graph, graph, working, dual=dual)
