"""Serialisation of property graphs.

Two formats are supported:

* **Edge-list text** — one line per node (``N <id> <label>``) and per edge
  (``E <source> <target> <label>``), whitespace separated.  This mirrors the
  format of the SNAP / GTgraph dumps the paper's experiments load, and is what
  the benchmark harness uses to cache generated graphs between runs.
* **JSON** — a single document with ``nodes`` and ``edges`` arrays, convenient
  for small fixtures checked into the test suite.

Node ids are written as strings; the loader converts ids that look like
integers back to ``int`` so that generated graphs round-trip exactly.

A JSON document can additionally be paired with the compiled index's binary
snapshot (:mod:`repro.index.serialize`): :func:`write_json_with_snapshot`
stores both side by side and :func:`read_json_with_snapshot` binds the
snapshot back to the reloaded graph, so a cold start skips
``GraphIndex.build`` entirely.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.graph.digraph import PropertyGraph
from repro.utils.errors import GraphError

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "graph_to_json",
    "graph_from_json",
    "write_json",
    "read_json",
    "write_json_with_snapshot",
    "read_json_with_snapshot",
    "SNAPSHOT_SUFFIX",
]

#: Extension of the compiled-snapshot sidecar written next to the graph JSON.
SNAPSHOT_SUFFIX = ".gix"

PathLike = Union[str, Path]


def _coerce_id(token: str):
    """Convert an id token back to ``int`` when it is a plain integer literal."""
    if token.lstrip("-").isdigit():
        return int(token)
    return token


def write_edge_list(graph: PropertyGraph, path: PathLike) -> None:
    """Write *graph* to *path* in the edge-list text format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# graph {graph.name}\n")
        for node in graph.nodes():
            handle.write(f"N {node} {graph.node_label(node)}\n")
        for source, target, label in graph.edges():
            handle.write(f"E {source} {target} {label}\n")


def read_edge_list(path: PathLike, name: str = "") -> PropertyGraph:
    """Load a graph previously written by :func:`write_edge_list`."""
    path = Path(path)
    graph = PropertyGraph(name or path.stem)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            kind = parts[0]
            if kind == "N":
                if len(parts) != 3:
                    raise GraphError(f"{path}:{line_number}: malformed node line {line!r}")
                graph.add_node(_coerce_id(parts[1]), parts[2])
            elif kind == "E":
                if len(parts) != 4:
                    raise GraphError(f"{path}:{line_number}: malformed edge line {line!r}")
                graph.add_edge(_coerce_id(parts[1]), _coerce_id(parts[2]), parts[3])
            else:
                raise GraphError(f"{path}:{line_number}: unknown record type {kind!r}")
    return graph


def graph_to_json(graph: PropertyGraph) -> dict:
    """A JSON-serialisable dictionary describing *graph*."""
    return {
        "name": graph.name,
        "nodes": [
            {"id": node, "label": graph.node_label(node), "attrs": dict(graph.node_attrs(node))}
            for node in graph.nodes()
        ],
        "edges": [
            {"source": source, "target": target, "label": label}
            for source, target, label in graph.edges()
        ],
    }


def graph_from_json(document: dict) -> PropertyGraph:
    """Rebuild a graph from the structure produced by :func:`graph_to_json`."""
    graph = PropertyGraph(document.get("name", "graph"))
    for record in document.get("nodes", []):
        graph.add_node(record["id"], record["label"], **record.get("attrs", {}))
    for record in document.get("edges", []):
        graph.add_edge(record["source"], record["target"], record["label"])
    return graph


def write_json(graph: PropertyGraph, path: PathLike) -> None:
    """Write *graph* as a JSON document to *path*."""
    Path(path).write_text(json.dumps(graph_to_json(graph), indent=2), encoding="utf-8")


def read_json(path: PathLike) -> PropertyGraph:
    """Load a graph from a JSON document written by :func:`write_json`."""
    return graph_from_json(json.loads(Path(path).read_text(encoding="utf-8")))


def _snapshot_path(path: PathLike) -> Path:
    return Path(path).with_suffix(SNAPSHOT_SUFFIX)


def write_json_with_snapshot(graph: PropertyGraph, path: PathLike) -> Path:
    """Write *graph* as JSON plus its compiled snapshot as a ``.gix`` sidecar.

    The snapshot is the cached index when it is fresh, otherwise a fresh
    build — either way the pair on disk is consistent.  Returns the sidecar
    path.
    """
    from repro.index.serialize import save_snapshot
    from repro.index.snapshot import GraphIndex

    write_json(graph, path)
    sidecar = _snapshot_path(path)
    save_snapshot(GraphIndex.for_graph(graph), sidecar)
    return sidecar


def read_json_with_snapshot(path: PathLike) -> PropertyGraph:
    """Load a JSON graph and bind its ``.gix`` snapshot sidecar, if present.

    With the sidecar, the returned graph already carries a fresh compiled
    index (``GraphIndex.for_graph`` is a cache hit — no build on the cold
    path); without one, this is exactly :func:`read_json`.  The sidecar is
    bound strictly (per-node label verification, O(|V|) on a cold start):
    a stale sidecar — e.g. the JSON was rewritten without refreshing the
    snapshot — raises :class:`~repro.utils.errors.SnapshotError` rather than
    silently attaching an index that describes a different graph.
    """
    from repro.index.serialize import load_snapshot

    graph = read_json(path)
    sidecar = _snapshot_path(path)
    if sidecar.exists():
        load_snapshot(sidecar, graph=graph, strict=True)
    return graph
