"""Descriptive statistics of property graphs.

The experiment reports of the paper characterise each dataset by its size, the
number of node/edge types and the average degree, and the parallel section
reasons about the total size of d-hop neighbourhoods (the pre-condition of
Theorem 7).  :func:`graph_statistics` gathers those quantities for any
:class:`~repro.graph.digraph.PropertyGraph`, and
:func:`neighborhood_size_bound` evaluates the Σ|Nd(v)| ≤ Cd·|G|/n condition
directly so users can check whether the parallel-scalability guarantee applies
to their graph before partitioning it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, List

from repro.graph.digraph import PropertyGraph
from repro.graph.traversal import nodes_within_hops
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["GraphStatistics", "graph_statistics", "degree_histogram", "neighborhood_size_bound"]

NodeId = Hashable


@dataclass
class GraphStatistics:
    """A summary of one graph, as reported in the paper's experimental setup."""

    name: str
    num_nodes: int
    num_edges: int
    num_node_labels: int
    num_edge_labels: int
    average_out_degree: float
    max_out_degree: int
    max_in_degree: int
    node_label_counts: Dict[str, int] = field(default_factory=dict)
    edge_label_counts: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        lines = [
            f"graph {self.name}: {self.num_nodes} nodes ({self.num_node_labels} types), "
            f"{self.num_edges} edges ({self.num_edge_labels} types)",
            f"  average out-degree {self.average_out_degree:.2f}, "
            f"max out/in degree {self.max_out_degree}/{self.max_in_degree}",
        ]
        return "\n".join(lines)


def graph_statistics(graph: PropertyGraph) -> GraphStatistics:
    """Compute the dataset summary used in experiment reports."""
    node_labels = Counter(graph.node_label(node) for node in graph.nodes())
    edge_labels: Counter = Counter()
    max_out = 0
    max_in = 0
    for node in graph.nodes():
        max_out = max(max_out, graph.out_degree(node))
        max_in = max(max_in, graph.in_degree(node))
    for _, _, label in graph.edges():
        edge_labels[label] += 1
    return GraphStatistics(
        name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_node_labels=len(node_labels),
        num_edge_labels=len(edge_labels),
        average_out_degree=graph.average_degree(),
        max_out_degree=max_out,
        max_in_degree=max_in,
        node_label_counts=dict(node_labels),
        edge_label_counts=dict(edge_labels),
    )


def degree_histogram(graph: PropertyGraph, direction: str = "out") -> Dict[int, int]:
    """Histogram of node degrees (``direction`` is ``"out"``, ``"in"`` or ``"total"``)."""
    if direction not in ("out", "in", "total"):
        raise ValueError("direction must be 'out', 'in' or 'total'")
    histogram: Counter = Counter()
    for node in graph.nodes():
        if direction == "out":
            degree = graph.out_degree(node)
        elif direction == "in":
            degree = graph.in_degree(node)
        else:
            degree = graph.out_degree(node) + graph.in_degree(node)
        histogram[degree] += 1
    return dict(histogram)


def neighborhood_size_bound(
    graph: PropertyGraph,
    d: int,
    num_workers: int,
    sample_size: int = 200,
    seed: SeedLike = 0,
) -> Dict[str, float]:
    """Estimate the parallel-scalability condition Σ|Nd(v)| ≤ Cd · |G| / n.

    The sum is estimated from a random node sample (exact when the graph has
    at most *sample_size* nodes).  Returns the estimated sum, the |G|/n
    budget, and the implied constant ``Cd`` — values of ``Cd`` in the low tens
    mean the d-hop partition replicates heavily and the parallel guarantee is
    weak for this graph and d.
    """
    if d < 0:
        raise ValueError("d must be non-negative")
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    rng = ensure_rng(seed)
    nodes: List[NodeId] = list(graph.nodes())
    if not nodes:
        return {"sum_neighborhood_sizes": 0.0, "budget": 0.0, "implied_cd": 0.0}
    if len(nodes) > sample_size:
        sampled = rng.sample(nodes, sample_size)
        scale = len(nodes) / sample_size
    else:
        sampled = nodes
        scale = 1.0
    total = sum(len(nodes_within_hops(graph, node, d)) for node in sampled) * scale
    budget = graph.size() / num_workers
    implied_cd = total / budget if budget else float("inf")
    return {
        "sum_neighborhood_sizes": total,
        "budget": budget,
        "implied_cd": implied_cd,
    }
