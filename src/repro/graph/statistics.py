"""Descriptive statistics of property graphs.

The experiment reports of the paper characterise each dataset by its size, the
number of node/edge types and the average degree, and the parallel section
reasons about the total size of d-hop neighbourhoods (the pre-condition of
Theorem 7).  :func:`graph_statistics` gathers those quantities for any
:class:`~repro.graph.digraph.PropertyGraph`, and
:func:`neighborhood_size_bound` evaluates the Σ|Nd(v)| ≤ Cd·|G|/n condition
directly so users can check whether the parallel-scalability guarantee applies
to their graph before partitioning it.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.graph.digraph import PropertyGraph
from repro.graph.traversal import nodes_within_hops
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "GraphStatistics",
    "graph_statistics",
    "degree_histogram",
    "neighborhood_size_bound",
    "CardinalityModel",
    "cardinality_model",
]

NodeId = Hashable


@dataclass
class GraphStatistics:
    """A summary of one graph, as reported in the paper's experimental setup."""

    name: str
    num_nodes: int
    num_edges: int
    num_node_labels: int
    num_edge_labels: int
    average_out_degree: float
    max_out_degree: int
    max_in_degree: int
    node_label_counts: Dict[str, int] = field(default_factory=dict)
    edge_label_counts: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        lines = [
            f"graph {self.name}: {self.num_nodes} nodes ({self.num_node_labels} types), "
            f"{self.num_edges} edges ({self.num_edge_labels} types)",
            f"  average out-degree {self.average_out_degree:.2f}, "
            f"max out/in degree {self.max_out_degree}/{self.max_in_degree}",
        ]
        return "\n".join(lines)


def graph_statistics(graph: PropertyGraph) -> GraphStatistics:
    """Compute the dataset summary used in experiment reports."""
    node_labels = Counter(graph.node_label(node) for node in graph.nodes())
    edge_labels: Counter = Counter()
    max_out = 0
    max_in = 0
    for node in graph.nodes():
        max_out = max(max_out, graph.out_degree(node))
        max_in = max(max_in, graph.in_degree(node))
    for _, _, label in graph.edges():
        edge_labels[label] += 1
    return GraphStatistics(
        name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_node_labels=len(node_labels),
        num_edge_labels=len(edge_labels),
        average_out_degree=graph.average_degree(),
        max_out_degree=max_out,
        max_in_degree=max_in,
        node_label_counts=dict(node_labels),
        edge_label_counts=dict(edge_labels),
    )


def degree_histogram(graph: PropertyGraph, direction: str = "out") -> Dict[int, int]:
    """Histogram of node degrees (``direction`` is ``"out"``, ``"in"`` or ``"total"``)."""
    if direction not in ("out", "in", "total"):
        raise ValueError("direction must be 'out', 'in' or 'total'")
    histogram: Counter = Counter()
    for node in graph.nodes():
        if direction == "out":
            degree = graph.out_degree(node)
        elif direction == "in":
            degree = graph.in_degree(node)
        else:
            degree = graph.out_degree(node) + graph.in_degree(node)
        histogram[degree] += 1
    return dict(histogram)


class CardinalityModel:
    """Independence-assumption cardinality estimates for plan steps.

    One O(V+E) pass collects the two distributions a textbook estimator
    needs: node counts per label and edge counts per **typed triple**
    ``(source label, edge label, target label)``.  From those,
    :meth:`expected_pool` answers the question the matching order poses at
    every step — *given one bound neighbour, how many candidates survive the
    edge constraint?* — as the mean typed degree of the bound endpoint.
    These are the *estimates* of ``EXPLAIN``; the observed side comes from
    the :class:`~repro.utils.counters.WorkCounter` probes the engines
    already tally.

    The model is a snapshot of one graph version; :func:`cardinality_model`
    memoises per ``(graph, version)`` so Zipf-hot explain traffic pays the
    pass once per epoch.
    """

    __slots__ = ("graph_name", "version", "num_nodes", "num_edges",
                 "label_counts", "triple_counts")

    def __init__(self, graph: PropertyGraph) -> None:
        self.graph_name = graph.name
        self.version = graph.version
        node_labels: Dict[NodeId, str] = {}
        label_counts: Counter = Counter()
        for node in graph.nodes():
            label = graph.node_label(node)
            node_labels[node] = label
            label_counts[label] += 1
        triple_counts: Counter = Counter()
        for source, target, edge_label in graph.edges():
            triple_counts[(node_labels[source], edge_label, node_labels[target])] += 1
        self.num_nodes = len(node_labels)
        self.num_edges = sum(triple_counts.values())
        self.label_counts: Dict[str, int] = dict(label_counts)
        self.triple_counts: Dict[Tuple[str, str, str], int] = dict(triple_counts)

    def label_count(self, label: str) -> int:
        """How many nodes carry *label* (the unconstrained pool estimate)."""
        return self.label_counts.get(label, 0)

    def triple_count(self, source_label: str, edge_label: str, target_label: str) -> int:
        """How many edges realise the typed triple."""
        return self.triple_counts.get((source_label, edge_label, target_label), 0)

    def expected_pool(
        self,
        new_label: str,
        edge_label: str,
        bound_label: str,
        outgoing: bool,
    ) -> float:
        """E[|candidates|] for a *new_label* node tied to one bound node.

        ``outgoing=True`` means the pattern edge runs new → bound (the pool
        is the bound node's typed predecessors), ``False`` means bound → new
        (its typed successors).  Either way the estimate is the triple count
        divided by the bound label's population — the mean typed degree.
        """
        bound = self.label_counts.get(bound_label, 0)
        if bound == 0:
            return 0.0
        if outgoing:
            triple = self.triple_counts.get((new_label, edge_label, bound_label), 0)
        else:
            triple = self.triple_counts.get((bound_label, edge_label, new_label), 0)
        return triple / bound

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CardinalityModel(graph={self.graph_name!r}, version={self.version}, "
            f"labels={len(self.label_counts)}, triples={len(self.triple_counts)})"
        )


# (id(graph), version) -> (graph, model).  The graph rides in the value to pin
# its id against recycling, mirroring ResultCache / PlanResolution keying.
_MODEL_CACHE: "OrderedDict[Tuple[int, int], Tuple[PropertyGraph, CardinalityModel]]" = (
    OrderedDict()
)
_MODEL_CACHE_LOCK = threading.Lock()
_MODEL_CACHE_CAPACITY = 8


def cardinality_model(graph: PropertyGraph) -> CardinalityModel:
    """The memoised :class:`CardinalityModel` of *graph* at its current version."""
    key = (id(graph), graph.version)
    with _MODEL_CACHE_LOCK:
        entry = _MODEL_CACHE.get(key)
        if entry is not None and entry[0] is graph:
            _MODEL_CACHE.move_to_end(key)
            return entry[1]
    model = CardinalityModel(graph)
    with _MODEL_CACHE_LOCK:
        _MODEL_CACHE[key] = (graph, model)
        _MODEL_CACHE.move_to_end(key)
        while len(_MODEL_CACHE) > _MODEL_CACHE_CAPACITY:
            _MODEL_CACHE.popitem(last=False)
    return model


def neighborhood_size_bound(
    graph: PropertyGraph,
    d: int,
    num_workers: int,
    sample_size: int = 200,
    seed: SeedLike = 0,
) -> Dict[str, float]:
    """Estimate the parallel-scalability condition Σ|Nd(v)| ≤ Cd · |G| / n.

    The sum is estimated from a random node sample (exact when the graph has
    at most *sample_size* nodes).  Returns the estimated sum, the |G|/n
    budget, and the implied constant ``Cd`` — values of ``Cd`` in the low tens
    mean the d-hop partition replicates heavily and the parallel guarantee is
    weak for this graph and d.
    """
    if d < 0:
        raise ValueError("d must be non-negative")
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    rng = ensure_rng(seed)
    nodes: List[NodeId] = list(graph.nodes())
    if not nodes:
        return {"sum_neighborhood_sizes": 0.0, "budget": 0.0, "implied_cd": 0.0}
    if len(nodes) > sample_size:
        sampled = rng.sample(nodes, sample_size)
        scale = len(nodes) / sample_size
    else:
        sampled = nodes
        scale = 1.0
    total = sum(len(nodes_within_hops(graph, node, d)) for node in sampled) * scale
    budget = graph.size() / num_workers
    implied_cd = total / budget if budget else float("inf")
    return {
        "sum_neighborhood_sizes": total,
        "budget": budget,
        "implied_cd": implied_cd,
    }
