"""Synthetic graph generators.

The paper's synthetic experiments use a GTgraph-based small-world generator
controlled by the numbers of nodes and edges, with labels drawn from an
alphabet of 30 symbols (Section 7, "Experimental setting").  GTgraph is a C
tool that is not available offline, so :func:`small_world_social_graph`
re-implements the same model class in pure Python:

* a ring-lattice backbone rewired with a configurable probability (the
  Watts–Strogatz small-world ingredient), which gives short average path
  lengths and high clustering, plus
* a preferential-attachment pass that adds the remaining edges biased towards
  already-high-degree nodes, which gives the heavy-tailed degree distribution
  observed in social networks.

Two simpler generators (:func:`random_labeled_graph`,
:func:`ring_of_cliques`) are used by unit and property-based tests where full
realism is unnecessary but deterministic shapes matter.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.graph.digraph import PropertyGraph
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "default_label_alphabet",
    "small_world_social_graph",
    "random_labeled_graph",
    "ring_of_cliques",
]


def default_label_alphabet(size: int = 30) -> List[str]:
    """The synthetic label alphabet L of the paper: ``L0`` ... ``L{size-1}``."""
    return [f"L{i}" for i in range(size)]


def small_world_social_graph(
    num_nodes: int,
    num_edges: int,
    node_labels: Optional[Sequence[str]] = None,
    edge_labels: Optional[Sequence[str]] = None,
    rewire_probability: float = 0.1,
    preferential_fraction: float = 0.5,
    seed: SeedLike = None,
    name: str = "synthetic",
) -> PropertyGraph:
    """Generate a labeled small-world graph with ``num_nodes`` nodes and ~``num_edges`` edges.

    Parameters
    ----------
    num_nodes, num_edges:
        Target sizes; the edge count is met exactly unless the graph would
        need multi-edges beyond what distinct (source, target, label) triples
        allow, in which case it is met as closely as possible.
    node_labels, edge_labels:
        Label alphabets; default to 30 node labels and 8 edge labels.
    rewire_probability:
        Probability that a lattice edge is rewired to a random target.
    preferential_fraction:
        Fraction of edges added via preferential attachment rather than the
        rewired lattice, controlling the degree skew.
    seed:
        Deterministic seed (int) or an existing ``random.Random``.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if num_edges < 0:
        raise ValueError("num_edges must be non-negative")
    rng = ensure_rng(seed)
    node_labels = list(node_labels) if node_labels else default_label_alphabet()
    edge_labels = list(edge_labels) if edge_labels else [f"e{i}" for i in range(8)]

    graph = PropertyGraph(name)
    for node in range(num_nodes):
        graph.add_node(node, rng.choice(node_labels))

    if num_nodes == 1 or num_edges == 0:
        return graph

    lattice_edges = int(num_edges * (1.0 - preferential_fraction))
    # Ring lattice: connect each node to its next k/2 neighbours, rewiring some.
    per_node = max(1, lattice_edges // num_nodes)
    added = 0
    for node in range(num_nodes):
        if added >= lattice_edges:
            break
        for offset in range(1, per_node + 1):
            if added >= lattice_edges:
                break
            if rng.random() < rewire_probability:
                target = rng.randrange(num_nodes)
            else:
                target = (node + offset) % num_nodes
            if target == node:
                target = (node + 1) % num_nodes
            label = rng.choice(edge_labels)
            before = graph.num_edges
            graph.add_edge(node, target, label)
            added += graph.num_edges - before

    # Preferential attachment for the remaining edges: targets are drawn from a
    # pool that contains every edge endpoint seen so far, so high-degree nodes
    # are proportionally more likely to be chosen again.
    endpoint_pool: List[int] = []
    for source, target, _ in graph.edges():
        endpoint_pool.append(source)
        endpoint_pool.append(target)
    if not endpoint_pool:
        endpoint_pool = list(range(num_nodes))

    attempts = 0
    max_attempts = (num_edges - graph.num_edges) * 20 + 100
    while graph.num_edges < num_edges and attempts < max_attempts:
        attempts += 1
        source = rng.randrange(num_nodes)
        if rng.random() < 0.8:
            target = rng.choice(endpoint_pool)
        else:
            target = rng.randrange(num_nodes)
        if source == target:
            continue
        label = rng.choice(edge_labels)
        before = graph.num_edges
        graph.add_edge(source, target, label)
        if graph.num_edges > before:
            endpoint_pool.append(source)
            endpoint_pool.append(target)
    return graph


def random_labeled_graph(
    num_nodes: int,
    edge_probability: float,
    node_labels: Sequence[str] = ("A", "B", "C"),
    edge_labels: Sequence[str] = ("r", "s"),
    seed: SeedLike = None,
    name: str = "random",
) -> PropertyGraph:
    """An Erdős–Rényi-style labeled digraph (used heavily by property tests)."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be within [0, 1]")
    rng = ensure_rng(seed)
    graph = PropertyGraph(name)
    for node in range(num_nodes):
        graph.add_node(node, rng.choice(list(node_labels)))
    for source in range(num_nodes):
        for target in range(num_nodes):
            if source == target:
                continue
            if rng.random() < edge_probability:
                graph.add_edge(source, target, rng.choice(list(edge_labels)))
    return graph


def ring_of_cliques(
    num_cliques: int,
    clique_size: int,
    node_label: str = "A",
    edge_label: str = "r",
    name: str = "ring-of-cliques",
) -> PropertyGraph:
    """A ring of directed cliques — a deterministic shape used by partition tests.

    Each clique is fully connected (both directions); consecutive cliques are
    linked by a single bridge edge, so the graph is connected but has an
    obvious balanced partition, making it a good fixture for DPar tests.
    """
    if num_cliques <= 0 or clique_size <= 0:
        raise ValueError("num_cliques and clique_size must be positive")
    graph = PropertyGraph(name)
    node = 0
    clique_members: List[List[int]] = []
    for _ in range(num_cliques):
        members = list(range(node, node + clique_size))
        node += clique_size
        for member in members:
            graph.add_node(member, node_label)
        for a in members:
            for b in members:
                if a != b:
                    graph.add_edge(a, b, edge_label)
        clique_members.append(members)
    for index in range(num_cliques):
        source = clique_members[index][-1]
        target = clique_members[(index + 1) % num_cliques][0]
        if source != target:
            graph.add_edge(source, target, edge_label)
    return graph
