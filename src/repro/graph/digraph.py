"""Labeled, directed property graphs.

This is the data substrate of the whole library.  The paper (Section 2.1)
models a graph as ``G = (V, E, L)`` where nodes and edges both carry labels.
Real social and knowledge graphs additionally have *typed* multi-edges — a
user may both ``follow`` and ``like`` another user — so :class:`PropertyGraph`
stores, for every node, a per-label adjacency map in both directions:

``out[u][label] -> set of successors`` and ``in_[v][label] -> set of predecessors``.

That layout makes the two operations the quantified-matching algorithms hammer
on — "children of *v* reachable by an edge labeled *l*" (the set ``Me(v)`` of
the paper) and "candidates with node label *l*" — O(1) dictionary hops.  It is
the reason the pure-Python benchmarks stay within seconds: a ``networkx``
digraph would pay an order of magnitude more per neighbourhood scan.

Nodes are identified by arbitrary hashable ids (ints in the generators,
strings in the examples).  Node attributes are free-form dictionaries used by
the dataset generators (e.g. a ``city`` attribute on Pokec-like users).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.utils.errors import EdgeNotFoundError, GraphError, NodeNotFoundError

__all__ = ["PropertyGraph", "Edge", "NodeId", "Label"]

NodeId = Hashable
Label = str
Edge = Tuple[NodeId, NodeId, Label]


class PropertyGraph:
    """A directed graph with labeled nodes and labeled (typed) edges.

    Parameters
    ----------
    name:
        Optional human-readable name used in benchmark reports.

    Example
    -------
    >>> g = PropertyGraph()
    >>> g.add_node("alice", "person")
    'alice'
    >>> g.add_node("redmi", "product")
    'redmi'
    >>> g.add_edge("alice", "redmi", "recommends")
    >>> sorted(g.successors("alice", "recommends"))
    ['redmi']
    """

    __slots__ = (
        "name",
        "_labels",
        "_attrs",
        "_out",
        "_in",
        "_edge_count",
        "_label_index",
        "_version",
        "_index_cache",
        # Weak referenceability (no storage cost until a weakref is taken):
        # lifetime regression tests pin down that caches release mutated
        # graphs, and observers can track a served graph without pinning it.
        "__weakref__",
    )

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        # node id -> node label
        self._labels: Dict[NodeId, Label] = {}
        # node id -> attribute dict (created lazily)
        self._attrs: Dict[NodeId, Dict[str, object]] = {}
        # node id -> edge label -> set of successor node ids
        self._out: Dict[NodeId, Dict[Label, Set[NodeId]]] = {}
        # node id -> edge label -> set of predecessor node ids
        self._in: Dict[NodeId, Dict[Label, Set[NodeId]]] = {}
        self._edge_count = 0
        # node label -> set of node ids carrying that label
        self._label_index: Dict[Label, Set[NodeId]] = {}
        # Monotone structural-mutation counter; compiled snapshots
        # (repro.index.GraphIndex) remember it to detect staleness.
        self._version = 0
        self._index_cache: Optional[object] = None

    # ---------------------------------------------------------- index support

    @property
    def version(self) -> int:
        """Structural mutation counter (bumped by node/edge/label changes).

        Attribute updates do not bump it: compiled indexes only mirror the
        graph *structure*, so attribute-only changes never invalidate them.
        """
        return self._version

    def cached_index(self) -> Optional[object]:
        """The last compiled index snapshot cached on this graph (may be stale)."""
        return self._index_cache

    def cache_index(self, snapshot: object) -> None:
        """Attach a compiled index snapshot (managed by ``GraphIndex.for_graph``)."""
        self._index_cache = snapshot

    def collapse_version(self, base: int) -> None:
        """Collapse the mutation counter to ``base + 1`` (one batched bump).

        The delta layer (:mod:`repro.delta`) applies a whole update batch
        through the ordinary mutation API — which bumps :attr:`version` once
        per operation — and then collapses the counter so the batch reads as a
        *single* structural change to every version-keyed consumer (index
        staleness, partition caches, the result cache).  The counter stays
        monotone: collapsing never moves it below ``base + 1`` relative to the
        pre-batch value, and a no-op call (counter already at or below the
        target) leaves it alone.
        """
        if self._version > base + 1:
            self._version = base + 1

    # ------------------------------------------------------------------ nodes

    def add_node(self, node: NodeId, label: Label, **attrs: object) -> NodeId:
        """Add *node* with *label*; re-adding an existing node updates its label.

        Returns the node id so call sites can chain the result.
        """
        previous = self._labels.get(node)
        if previous is not None and previous != label:
            self._label_index[previous].discard(node)
        if previous is None:
            self._out[node] = {}
            self._in[node] = {}
        if previous != label:
            self._version += 1
        self._labels[node] = label
        self._label_index.setdefault(label, set()).add(node)
        if attrs:
            self._attrs.setdefault(node, {}).update(attrs)
        return node

    def has_node(self, node: NodeId) -> bool:
        return node in self._labels

    def node_label(self, node: NodeId) -> Label:
        """The label of *node*; raises :class:`NodeNotFoundError` if absent."""
        try:
            return self._labels[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def node_attrs(self, node: NodeId) -> Mapping[str, object]:
        """The (possibly empty) attribute mapping of *node*."""
        if node not in self._labels:
            raise NodeNotFoundError(node)
        return self._attrs.get(node, {})

    def set_node_attr(self, node: NodeId, key: str, value: object) -> None:
        if node not in self._labels:
            raise NodeNotFoundError(node)
        self._attrs.setdefault(node, {})[key] = value

    def remove_node_attr(self, node: NodeId, key: str) -> None:
        """Remove one attribute of *node* (a missing *key* is a no-op).

        Like :meth:`set_node_attr` this never bumps :attr:`version` — the
        matching semantics (and hence every compiled structure) ignore
        attributes.  The delta layer uses it to roll back an attribute that
        did not exist before a batch set it.
        """
        if node not in self._labels:
            raise NodeNotFoundError(node)
        attrs = self._attrs.get(node)
        if attrs is not None:
            attrs.pop(key, None)
            if not attrs:
                del self._attrs[node]

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over all node ids."""
        return iter(self._labels)

    def nodes_with_label(self, label: Label) -> Set[NodeId]:
        """The set of nodes carrying *label* (empty set if the label is unused).

        Always a fresh set.  Returning the live ``_label_index`` entry here
        let a caller's ``discard``/``clear`` silently corrupt the index (the
        node stayed in the graph but vanished from label lookups); every
        other set-returning accessor (``successors``, ``predecessors``,
        ``neighbors``, ``edge_labels``, ``out_edge_labels``, ``node_labels``)
        already copies.
        """
        members = self._label_index.get(label)
        return set(members) if members else set()

    def node_labels(self) -> Set[Label]:
        """All node labels present in the graph."""
        return set(self._label_index)

    def remove_node(self, node: NodeId) -> None:
        """Remove *node* and all its incident edges."""
        if node not in self._labels:
            raise NodeNotFoundError(node)
        for label, targets in list(self._out[node].items()):
            for target in list(targets):
                self.remove_edge(node, target, label)
        for label, sources in list(self._in[node].items()):
            for source in list(sources):
                self.remove_edge(source, node, label)
        self._label_index[self._labels[node]].discard(node)
        del self._labels[node]
        self._attrs.pop(node, None)
        del self._out[node]
        del self._in[node]
        self._version += 1

    # ------------------------------------------------------------------ edges

    def add_edge(self, source: NodeId, target: NodeId, label: Label) -> None:
        """Add a directed edge ``source -[label]-> target``.

        Both endpoints must already exist.  Adding an edge that is already
        present is a no-op (the graph is not a multigraph for identical
        (source, target, label) triples).
        """
        if source not in self._labels:
            raise NodeNotFoundError(source)
        if target not in self._labels:
            raise NodeNotFoundError(target)
        targets = self._out[source].setdefault(label, set())
        if target in targets:
            return
        targets.add(target)
        self._in[target].setdefault(label, set()).add(source)
        self._edge_count += 1
        self._version += 1

    def has_edge(self, source: NodeId, target: NodeId, label: Optional[Label] = None) -> bool:
        """Whether an edge from *source* to *target* exists (optionally of *label*)."""
        out = self._out.get(source)
        if out is None:
            return False
        if label is not None:
            return target in out.get(label, ())
        return any(target in targets for targets in out.values())

    def edge_labels(self, source: NodeId, target: NodeId) -> Set[Label]:
        """All labels of edges from *source* to *target*."""
        out = self._out.get(source)
        if out is None:
            return set()
        return {label for label, targets in out.items() if target in targets}

    def remove_edge(self, source: NodeId, target: NodeId, label: Label) -> None:
        targets = self._out.get(source, {}).get(label)
        if not targets or target not in targets:
            raise EdgeNotFoundError(source, target, label)
        targets.discard(target)
        if not targets:
            del self._out[source][label]
        sources = self._in[target][label]
        sources.discard(source)
        if not sources:
            del self._in[target][label]
        self._edge_count -= 1
        self._version += 1

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as ``(source, target, label)`` triples."""
        for source, by_label in self._out.items():
            for label, targets in by_label.items():
                for target in targets:
                    yield (source, target, label)

    # ------------------------------------------------------------ adjacency

    def successors(self, node: NodeId, label: Optional[Label] = None) -> Set[NodeId]:
        """Children of *node*; restricted to edges labeled *label* when given.

        This is exactly the set ``Me(v)`` of the paper when *label* is the
        label of pattern edge *e*.
        """
        out = self._out.get(node)
        if out is None:
            if node not in self._labels:
                raise NodeNotFoundError(node)
            return set()
        if label is not None:
            return set(out.get(label, ()))
        result: Set[NodeId] = set()
        for targets in out.values():
            result.update(targets)
        return result

    def predecessors(self, node: NodeId, label: Optional[Label] = None) -> Set[NodeId]:
        """Parents of *node*; restricted to edges labeled *label* when given."""
        incoming = self._in.get(node)
        if incoming is None:
            if node not in self._labels:
                raise NodeNotFoundError(node)
            return set()
        if label is not None:
            return set(incoming.get(label, ()))
        result: Set[NodeId] = set()
        for sources in incoming.values():
            result.update(sources)
        return result

    def out_degree(self, node: NodeId, label: Optional[Label] = None) -> int:
        """Number of outgoing edges of *node* (optionally of a given label)."""
        out = self._out.get(node)
        if out is None:
            if node not in self._labels:
                raise NodeNotFoundError(node)
            return 0
        if label is not None:
            return len(out.get(label, ()))
        return sum(len(targets) for targets in out.values())

    def in_degree(self, node: NodeId, label: Optional[Label] = None) -> int:
        """Number of incoming edges of *node* (optionally of a given label)."""
        incoming = self._in.get(node)
        if incoming is None:
            if node not in self._labels:
                raise NodeNotFoundError(node)
            return 0
        if label is not None:
            return len(incoming.get(label, ()))
        return sum(len(sources) for sources in incoming.values())

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """Union of successors and predecessors, ignoring edge labels."""
        return self.successors(node) | self.predecessors(node)

    def out_edge_labels(self, node: NodeId) -> Set[Label]:
        """All outgoing edge labels of *node*."""
        out = self._out.get(node)
        if out is None:
            if node not in self._labels:
                raise NodeNotFoundError(node)
            return set()
        return set(out)

    # --------------------------------------------------------------- metrics

    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def size(self) -> int:
        """|G| = |V| + |E|, the size measure used throughout the paper."""
        return self.num_nodes + self.num_edges

    def average_degree(self) -> float:
        """Average out-degree (0.0 for an empty graph)."""
        if not self._labels:
            return 0.0
        return self._edge_count / len(self._labels)

    # ------------------------------------------------------------- subgraphs

    def induced_subgraph(self, nodes: Iterable[NodeId], name: Optional[str] = None) -> "PropertyGraph":
        """The subgraph induced by *nodes* (all edges with both endpoints kept)."""
        keep = set(nodes)
        sub = PropertyGraph(name or f"{self.name}#induced")
        for node in keep:
            if node not in self._labels:
                raise NodeNotFoundError(node)
            sub.add_node(node, self._labels[node], **self._attrs.get(node, {}))
        for node in keep:
            for label, targets in self._out[node].items():
                for target in targets:
                    if target in keep:
                        sub.add_edge(node, target, label)
        return sub

    def copy(self, name: Optional[str] = None) -> "PropertyGraph":
        """A deep-enough copy (structure and attributes are duplicated)."""
        clone = PropertyGraph(name or self.name)
        for node, label in self._labels.items():
            clone.add_node(node, label, **self._attrs.get(node, {}))
        for source, target, label in self.edges():
            clone.add_edge(source, target, label)
        return clone

    @classmethod
    def from_compiled_parts(
        cls,
        name: str,
        labels: Dict[NodeId, Label],
        out: Dict[NodeId, Dict[Label, Set[NodeId]]],
        in_: Dict[NodeId, Dict[Label, Set[NodeId]]],
        edge_count: int,
        version: int = 0,
    ) -> "PropertyGraph":
        """Construct a graph directly from prebuilt internal structures.

        This is the decode fast path of the binary snapshot loader
        (:mod:`repro.index.serialize`): the adjacency dicts are adopted as-is
        — **ownership transfers to the graph**, callers must not alias them —
        and the mutation counter is *set* to ``version`` instead of being
        bumped once per node and edge, so an index snapshot carrying the same
        stamp stays fresh for the rebuilt graph.  The caller guarantees
        consistency (``out``/``in_`` mirror each other, every adjacency key
        is labeled); :meth:`validate` checks it when in doubt.  Node
        attributes never travel through the snapshot (the index does not
        mirror them); callers re-apply them afterwards, as
        :meth:`repro.parallel.worker.FragmentPayload.materialise` does.
        """
        graph = cls(name)
        graph._labels = labels
        graph._out = out
        graph._in = in_
        graph._edge_count = edge_count
        graph._version = version
        label_index: Dict[Label, Set[NodeId]] = {}
        for node, label in labels.items():
            label_index.setdefault(label, set()).add(node)
        graph._label_index = label_index
        return graph

    def merge_from(self, other: "PropertyGraph") -> None:
        """Union *other* into this graph in place (labels of *other* win)."""
        for node in other.nodes():
            self.add_node(node, other.node_label(node), **other.node_attrs(node))
        for source, target, label in other.edges():
            self.add_edge(source, target, label)

    # ------------------------------------------------------------- protocols

    def __getstate__(self) -> Dict[str, object]:
        # Compiled index snapshots are per-process caches; shipping them to a
        # worker process would only duplicate the graph payload.
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in ("_index_cache", "__weakref__")
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)
        self._index_cache = None

    def __contains__(self, node: NodeId) -> bool:
        return node in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:
        return (
            f"PropertyGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality: same nodes, labels, attributes and edges."""
        if not isinstance(other, PropertyGraph):
            return NotImplemented
        if self._labels != other._labels:
            return False
        if {n: a for n, a in self._attrs.items() if a} != {
            n: a for n, a in other._attrs.items() if a
        }:
            return False
        return set(self.edges()) == set(other.edges())

    def __hash__(self) -> int:  # graphs are mutable; identity hash is intentional
        return id(self)

    # ------------------------------------------------------------ validation

    def validate(self) -> None:
        """Check internal index consistency; raises :class:`GraphError` on corruption.

        Intended for tests and debugging, not for hot paths.
        """
        for label, members in self._label_index.items():
            for node in members:
                if self._labels.get(node) != label:
                    raise GraphError(f"label index is stale for node {node!r}")
        forward = 0
        for source, by_label in self._out.items():
            for label, targets in by_label.items():
                forward += len(targets)
                for target in targets:
                    if source not in self._in.get(target, {}).get(label, ()):
                        raise GraphError(
                            f"missing reverse edge for ({source!r}, {target!r}, {label})"
                        )
        if forward != self._edge_count:
            raise GraphError("edge count does not match adjacency structure")
