"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works in offline environments whose setuptools
toolchain lacks the ``wheel`` package required by PEP 517 editable builds
(pip then falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
