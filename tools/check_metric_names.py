#!/usr/bin/env python3
"""Lint: every metric name used in ``src/`` is documented.

The observability contract puts every instrument behind one dotted namespace,
and ``docs/OBSERVABILITY.md`` carries the authoritative table (section
"Metric namespace").  Nothing stops a new call site from minting
``serve.admision.waited`` — misspelt, undocumented, invisible to anyone
reading the docs — so this check closes the loop: it extracts every literal
``registry.counter("…")`` / ``.gauge("…")`` / ``.histogram("…")`` name from
the source tree and fails unless each one appears in the docs table.

Skipped:

* ``src/repro/obs/metrics.py`` itself — its docstrings mint throwaway
  example names (``"x"``, ``"scoped.example"``) to document the API.

One call site picks its name via a conditional expression (the L1 result
cache's hits-or-misses ternary), so the stale check accepts any documented
name that appears *somewhere* in ``src/`` as a dotted metric-shaped string
literal, even when no literal ``registry.<kind>("…")`` call uses it.

Exit status 0 when clean; 1 otherwise (one line per missing name).  CI runs
it in the docs job next to ``check_links.py``; run it locally with
``python tools/check_metric_names.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src"
DOCS_TABLE = REPO_ROOT / "docs" / "OBSERVABILITY.md"

# The registry module's own docstring examples are not production names.
SKIP_FILES = {SOURCE_ROOT / "repro" / "obs" / "metrics.py"}

_CALL = re.compile(r"registry\.(?:counter|gauge|histogram)\(\s*\"([^\"]+)\"")
# Fallback for names picked via a variable (e.g. ResultCache's
# hits-or-misses ternary): any dotted metric-shaped string literal.
_LITERAL = re.compile(
    r"\"((?:index|match|plan|delta|pool|service|serve)\.[a-z0-9_.]+)\""
)


def used_names() -> tuple[dict[str, list[str]], set[str]]:
    """``(direct, literals)``: names at literal ``registry.<kind>("…")``
    call sites (mapped to ``path:line``), and the wider set of metric-shaped
    string literals anywhere in ``src/`` (covers variable-name call sites)."""
    sites: dict[str, list[str]] = {}
    literals: set[str] = set()
    for path in sorted(SOURCE_ROOT.rglob("*.py")):
        if path in SKIP_FILES:
            continue
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for name in _CALL.findall(line):
                sites.setdefault(name, []).append(
                    f"{path.relative_to(REPO_ROOT)}:{number}"
                )
            literals.update(_LITERAL.findall(line))
    return sites, literals


def documented_names() -> set[str]:
    """Backticked names from the OBSERVABILITY.md namespace table rows."""
    names: set[str] = set()
    for line in DOCS_TABLE.read_text(encoding="utf-8").splitlines():
        if not line.startswith("| `"):
            continue
        match = re.match(r"\| `([^`]+)` \|", line)
        if match:
            names.add(match.group(1))
    return names


def main() -> int:
    used, literals = used_names()
    documented = documented_names()
    if not documented:
        print(f"{DOCS_TABLE}: no metric namespace table found", file=sys.stderr)
        return 1
    missing = {name: sites for name, sites in used.items() if name not in documented}
    for name in sorted(missing):
        print(
            f"undocumented metric {name!r} (add it to {DOCS_TABLE.name}'s "
            f"namespace table): used at {', '.join(missing[name])}"
        )
    stale = documented - set(used) - literals
    for name in sorted(stale):
        print(
            f"documented metric {name!r} has no call site left in src/ "
            "(drop the table row or restore the instrument)"
        )
    if missing or stale:
        return 1
    print(
        f"check_metric_names: {len(used)} metric names used, all documented "
        f"({len(documented)} table rows)."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
