#!/usr/bin/env python3
"""Lint the matching/plan hot paths for throwaway set-copy idioms.

The enumeration and plan layers sit inside per-candidate and per-probe loops,
where ``pool & set(restriction)`` or ``candidates.copy()`` quietly
materialise a full copy on every call — the exact regressions the vectorized
sorted-run kernels exist to avoid (and that the no-copy satellite fixes
removed from :mod:`repro.matching.enumerate` and
:mod:`repro.matching.dmatch`).  This check keeps them from creeping back.

Flagged in ``src/repro/matching/`` and ``src/repro/plan/``:

* a binary set operator applied to a fresh materialisation —
  ``& set(…)``, ``|= frozenset(…)``, ``- set(…)`` and friends
  (use ``intersection_update(iterable)`` / ``intersection(iterable)`` or the
  sorted-run kernels instead);
* ``.copy()`` calls (hot-path structures are reused or rebuilt per epoch,
  never defensively copied per probe).

A line that is genuinely cold (a reference oracle, a one-off builder) opts
out with a trailing ``# hotpath: ok`` comment.  Comments and docstrings are
ignored via tokenization, so *mentioning* an idiom is fine.

Exit status 0 when clean; 1 otherwise (one line per finding).  CI runs it in
the docs job next to ``check_links.py``; run it locally with
``python tools/check_hotpath.py``.
"""

from __future__ import annotations

import io
import re
import sys
import tokenize
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

HOT_DIRS = ("src/repro/matching", "src/repro/plan")

ESCAPE = "hotpath: ok"

# A binary set operator against a fresh set/frozenset materialisation: the
# right-hand side is built only to be thrown away after the operation.
_SET_COPY = re.compile(r"[&|\-^]=?\s*(?:frozen)?set\(")
_COPY_CALL = re.compile(r"\.copy\(\)")

PATTERNS = (
    (_SET_COPY, "binary set op against a fresh set() — intersect the iterable"),
    (_COPY_CALL, ".copy() on a hot path — reuse or rebuild per epoch"),
)


def code_lines(path: Path) -> dict[int, str]:
    """Line number -> source text with comments and docstrings blanked."""
    text = path.read_text(encoding="utf-8")
    lines = {number + 1: line for number, line in enumerate(text.splitlines())}
    drop: list[tuple[int, int, int, int]] = []  # (row0, col0, row1, col1)
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except tokenize.TokenError:
        return lines
    previous_meaningful = None
    for token in tokens:
        if token.type == tokenize.COMMENT:
            drop.append((*token.start, *token.end))
        elif token.type == tokenize.STRING:
            # A string expression statement (docstring position): not code.
            if previous_meaningful in (None, tokenize.NEWLINE, tokenize.INDENT,
                                       tokenize.DEDENT):
                drop.append((*token.start, *token.end))
        if token.type not in (tokenize.NL, tokenize.COMMENT):
            previous_meaningful = token.type
    for row0, col0, row1, col1 in drop:
        for row in range(row0, row1 + 1):
            line = lines.get(row, "")
            lo = col0 if row == row0 else 0
            hi = col1 if row == row1 else len(line)
            lines[row] = line[:lo] + " " * (hi - lo) + line[hi:]
    return lines


def findings() -> list[str]:
    problems: list[str] = []
    for directory in HOT_DIRS:
        for path in sorted((REPO_ROOT / directory).rglob("*.py")):
            raw = path.read_text(encoding="utf-8").splitlines()
            for number, line in code_lines(path).items():
                if ESCAPE in raw[number - 1]:
                    continue
                for pattern, message in PATTERNS:
                    if pattern.search(line):
                        problems.append(
                            f"{path.relative_to(REPO_ROOT)}:{number}: "
                            f"{message} [{raw[number - 1].strip()}]"
                        )
    return problems


def main() -> int:
    problems = findings()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} hot-path set-copy idiom(s)", file=sys.stderr)
        return 1
    print("hot paths clean: no throwaway set copies in matching/ or plan/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
