#!/usr/bin/env python3
"""Check that relative markdown links in README/docs point at real files.

Scans the repo's markdown surface (README.md, docs/*.md, ROADMAP.md,
CHANGES.md) for inline links and fails loudly when a relative target —
optionally carrying a ``#fragment`` — does not exist on disk.  External links
(``http(s)://``, ``mailto:``) and pure in-page anchors are ignored: this is a
repository-consistency check, not a crawler, so it needs no network and
cannot flake.

Exit status 0 when every link resolves; 1 otherwise (one line per broken
link).  CI runs it as part of the docs job; run it locally with
``python tools/check_links.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline markdown links: [text](target).  Reference-style links are not used
# in this repo; add a second pattern here if they ever are.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files() -> list[Path]:
    files = [REPO_ROOT / name for name in ("README.md", "ROADMAP.md", "CHANGES.md")]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return [path for path in files if path.exists()]


def broken_links() -> list[str]:
    problems: list[str] = []
    for path in markdown_files():
        text = path.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                line = text.count("\n", 0, match.start()) + 1
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}:{line}: broken link -> {target}"
                )
    return problems


def main() -> int:
    problems = broken_links()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(markdown_files())} markdown files: all links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
